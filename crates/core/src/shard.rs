//! The per-shard engine: Algorithms 1–3's write path over one device slice.
//!
//! [`ShardEngine`] owns everything a store shard needs exclusive access to —
//! the emulated device, the data-zone region, the hash index and the dynamic
//! address pool — plus an `Arc` of the current immutable
//! [`ModelSnapshot`]: predictions read the shard's own snapshot clone, so
//! the op path takes **zero model locks**. When a (re)train completes, the
//! store publishes the new snapshot to every engine via
//! [`ShardEngine::install_model`], which swaps the `Arc` and relabels the
//! pool together under the shard's existing lock — the pool's labels and
//! the model that produced them can never be observed out of sync.
//!
//! Data-zone bucket layout (16-byte header + value, rounded to whole
//! words):
//!
//! ```text
//! [ flags: u8 | pad ×7 | key: u64 LE | value ×value_size ]
//! ```
//!
//! The valid flag implements the paper's deletion protocol (*"resetting the
//! associated flag bit"*, Algorithm 3 line 2); the key in the header is what
//! lets a DRAM-index store rebuild its index after a crash (§V-A.3).
//!
//! GETs go through [`NvmDevice::peek`] and [`KeyIndex::lookup`], which need
//! only shared references — concurrent readers of one shard never contend
//! on a write lock (§VI-E: lookups *"do not go through the model or the
//! dynamic address pool"*).

use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pnw_index::{AtomicHashIndex, IndexReader, KeyIndex, PathHashIndex};
use pnw_nvm_sim::{
    CellView, DeviceBacking, DeviceStats, NvmConfig, NvmDevice, NvmError, Region, RegionAllocator,
    WriteMode,
};

use crate::config::{IndexPlacement, PnwConfig, UpdatePolicy};
use crate::durable::DurableShard;
use crate::error::PnwError;
use crate::metrics::{OpReport, StoreSnapshot, TrainStats};
use std::sync::Arc;

use crate::model::{stride_sample, ModelSnapshot, PredictScratch};
use crate::pool::DynamicAddressPool;

pub(crate) const HDR_BYTES: usize = 16;
const FLAG_VALID: u8 = 1;

/// Cached-label sentinel: the bucket's content label is unknown under the
/// current model and must be re-predicted on demand.
const LABEL_STALE: u16 = u16::MAX;

/// Every 16th fresh PUT of a batch group runs the fully-instrumented path
/// so batched throughput rows carry real prediction latencies.
const PREDICT_SAMPLE_STRIDE: u64 = 16;

#[inline]
fn label_u16(cluster: usize) -> u16 {
    if cluster >= LABEL_STALE as usize {
        LABEL_STALE
    } else {
        cluster as u16
    }
}

/// The shard state the lock-free read path shares with its engine: the
/// seqlock word every mutation brackets, and the GET counter (readers
/// hold no lock, so the counter cannot live in the engine).
///
/// Write brackets nest (a batch group wraps the per-op methods it calls);
/// only the outermost bracket touches the sequence, tracked by `depth` —
/// which only the single engine owner ever mutates, so its accesses are
/// relaxed.
#[derive(Debug)]
pub(crate) struct ShardSync {
    /// Seqlock sequence: even = quiescent, odd = a mutation is in flight.
    seq: AtomicU64,
    /// Write-bracket nesting depth (engine-owner thread only).
    depth: AtomicU32,
    /// GETs served, by both the lock-free and the locked read path.
    gets: AtomicU64,
}

impl ShardSync {
    fn new() -> Self {
        ShardSync {
            seq: AtomicU64::new(0),
            depth: AtomicU32::new(0),
            gets: AtomicU64::new(0),
        }
    }

    /// Begins a read-side critical section: spins past in-flight write
    /// brackets and returns the even sequence to validate against.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        loop {
            let s = self.seq.load(Ordering::Acquire);
            if s & 1 == 0 {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// Validates the read-side critical section begun at `s1`: `true`
    /// means no write bracket opened while the caller was reading, so
    /// everything it read is a consistent snapshot.
    #[inline]
    pub fn read_validate(&self, s1: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == s1
    }

    /// Counts one GET (reads take no lock, so the counter lives here).
    #[inline]
    pub fn count_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    /// GETs served so far.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    fn write_begin(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
    }

    fn write_end(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Release);
    }
}

/// RAII write bracket: increments the seqlock on entry and exit of the
/// outermost mutation scope. Nested brackets (a batch group calling the
/// per-op methods) are counted, not re-published.
struct WriteBracket {
    sync: Arc<ShardSync>,
}

impl WriteBracket {
    #[inline]
    fn enter(sync: &Arc<ShardSync>) -> Self {
        if sync.depth.fetch_add(1, Ordering::Relaxed) == 0 {
            sync.write_begin();
        }
        WriteBracket {
            sync: Arc::clone(sync),
        }
    }
}

impl Drop for WriteBracket {
    #[inline]
    fn drop(&mut self) {
        if self.sync.depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.sync.write_end();
        }
    }
}

/// Validates a value against a configuration's value size — the one
/// implementation behind both store frontends' early rejection.
pub(crate) fn check_value(cfg: &PnwConfig, value: &[u8]) -> Result<(), PnwError> {
    if value.len() != cfg.value_size {
        return Err(PnwError::WrongValueSize {
            expected: cfg.value_size,
            got: value.len(),
        });
    }
    Ok(())
}

/// Which code path a PUT took — callers use this to decide whether the
/// retrain trigger should be evaluated (an in-place update touches neither
/// the pool nor the model, so it never makes retraining due).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutPath {
    /// A fresh predicted allocation from the pool (also the DELETE-then-PUT
    /// update path).
    Fresh,
    /// An in-place update straight through the hash index
    /// ([`UpdatePolicy::InPlace`]).
    InPlace,
}

/// One shard of the Predict-and-Write store: device slice + index + pool.
pub struct ShardEngine {
    cfg: PnwConfig,
    dev: NvmDevice,
    data: Region,
    /// Buckets currently in the active data zone (grows via
    /// [`ShardEngine::extend_zone`] up to `cfg.capacity +
    /// cfg.reserve_buckets`).
    active_buckets: usize,
    bucket_size: usize,
    index: Box<dyn KeyIndex>,
    index_region: Option<Region>,
    index_leaves: usize,
    pool: DynamicAddressPool,
    /// The shard's clone of the current immutable model snapshot. Swapped
    /// wholesale by [`ShardEngine::install_model`]; predictions on the op
    /// path read it directly — no lock, no manager.
    model: Arc<ModelSnapshot>,
    live: usize,
    predict_total: Duration,
    puts: u64,
    deletes: u64,
    /// Seqlock + GET counter shared with the lock-free read path.
    sync: Arc<ShardSync>,
    /// Per-bucket cached content label under the *current* model
    /// ([`LABEL_STALE`] = unknown, re-predict on demand). Lets DELETE and
    /// the DeletePut update skip Algorithm 3's peek + predict when the
    /// bucket was written under the model that is still installed.
    labels: Vec<u16>,
    /// Per-shard prediction scratch (distances, ranking, PCA features) —
    /// the model is shared and read-only, the mutable buffers live here so
    /// steady-state PUT/DELETE allocates nothing.
    scratch: PredictScratch,
    /// Reusable bucket image for the PUT write (header + value); the pad
    /// bytes `[1..8]` are zeroed once and never touched again.
    bucket_img: Vec<u8>,
    /// Reusable value buffer for DELETE's content relabeling and
    /// maintenance scans.
    value_buf: Vec<u8>,
    /// WAL appender when this shard is file-backed; `None` keeps the
    /// volatile op path bit-for-bit unchanged.
    durable: Option<DurableShard>,
}

impl ShardEngine {
    /// Creates an engine with a fresh zeroed device slice.
    pub fn new(cfg: PnwConfig) -> Self {
        Self::with_device(cfg, None)
    }

    pub(crate) fn with_device(cfg: PnwConfig, image: Option<Vec<u8>>) -> Self {
        Self::build(cfg, image, None).expect("volatile device construction cannot fail")
    }

    /// Creates an engine over a write-through file-backed device at
    /// `path` (fallible: the backing file may be unreadable or of the
    /// wrong size for this geometry).
    pub(crate) fn open_file(cfg: PnwConfig, path: std::path::PathBuf) -> Result<Self, PnwError> {
        Self::build(cfg, None, Some(path))
    }

    fn build(
        cfg: PnwConfig,
        image: Option<Vec<u8>>,
        file: Option<std::path::PathBuf>,
    ) -> Result<Self, PnwError> {
        let bucket_size = (HDR_BYTES + cfg.value_size).next_multiple_of(8);
        let total_buckets = cfg.capacity + cfg.reserve_buckets;
        let data_bytes = total_buckets * bucket_size;

        let (index_leaves, index_bytes) = match cfg.index {
            IndexPlacement::Dram => (0, 0),
            IndexPlacement::Nvm => {
                // Sized for the fully-extended zone so the index never has
                // to move (the §V-C property: extension touches only the
                // DRAM-side model and pool).
                let leaves = (total_buckets * 2).next_power_of_two().max(8);
                (leaves, PathHashIndex::region_bytes_for(leaves))
            }
        };
        let total = (index_bytes + data_bytes + 4096).next_multiple_of(64);
        let mut alloc = RegionAllocator::new(total);
        let index_region = (index_bytes > 0).then(|| alloc.alloc(index_bytes, 64).expect("index"));
        let data = alloc
            .alloc_buckets(total_buckets, bucket_size)
            .expect("data zone");

        let nvm_cfg = NvmConfig::default()
            .with_size(total)
            .with_bit_wear(cfg.track_bit_wear);
        let dev = match (image, file) {
            (Some(image), None) => {
                assert_eq!(
                    image.len(),
                    total,
                    "image size does not match the configured geometry"
                );
                NvmDevice::from_image(nvm_cfg, image)
            }
            (None, Some(path)) => {
                NvmDevice::open(nvm_cfg.with_backing(DeviceBacking::File(path)))?
            }
            _ => NvmDevice::new(nvm_cfg),
        };
        let index: Box<dyn KeyIndex> = match index_region {
            Some(r) => Box::new(PathHashIndex::create(r, index_leaves)),
            // Sized for the fully-extended zone: the atomic table never
            // rehashes, so lock-free readers keep a valid handle for the
            // engine's whole lifetime.
            None => Box::new(AtomicHashIndex::with_capacity(total_buckets)),
        };
        // Untrained model: one cluster, all buckets free.
        let mut pool = DynamicAddressPool::new(1, cfg.capacity);
        for b in 0..cfg.capacity as u32 {
            pool.push(0, b);
        }
        let active_buckets = cfg.capacity;
        let (bucket_img, value_buf) = (
            vec![0u8; HDR_BYTES + cfg.value_size],
            vec![0u8; cfg.value_size],
        );
        let model = Arc::new(ModelSnapshot::untrained(cfg.value_size * 8));
        Ok(ShardEngine {
            cfg,
            dev,
            data,
            active_buckets,
            bucket_size,
            index,
            index_region,
            index_leaves,
            pool,
            model,
            live: 0,
            predict_total: Duration::ZERO,
            puts: 0,
            deletes: 0,
            sync: Arc::new(ShardSync::new()),
            labels: vec![LABEL_STALE; total_buckets],
            scratch: PredictScratch::new(),
            bucket_img,
            value_buf,
            durable: None,
        })
    }

    /// The shard's configuration (capacity fields describe this shard's
    /// slice, not the whole logical store).
    pub fn config(&self) -> &PnwConfig {
        &self.cfg
    }

    /// Live key count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative device statistics for this shard's slice.
    pub fn device_stats(&self) -> &DeviceStats {
        self.dev.stats()
    }

    /// The underlying device (wear CDFs, latency model).
    pub fn device(&self) -> &NvmDevice {
        &self.dev
    }

    /// The shard's seqlock + GET-counter handle, shared with the
    /// lock-free read path. Stable for the engine's lifetime.
    pub(crate) fn sync_handle(&self) -> Arc<ShardSync> {
        Arc::clone(&self.sync)
    }

    /// A lock-free view of the device's cells, valid for the engine's
    /// whole lifetime (the cell buffer never moves).
    pub(crate) fn cell_view(&self) -> CellView {
        self.dev.cell_view()
    }

    /// A lock-free index reader, when this shard's index supports one
    /// (both built-in placements do).
    pub(crate) fn index_reader(&self) -> Option<IndexReader> {
        self.index.reader()
    }

    /// Clears device statistics so a measurement window excludes warm-up
    /// traffic.
    pub fn reset_device_stats(&mut self) {
        self.dev.reset_stats();
    }

    /// Clears wear counters (Figures 12/13 measure wear over a stream that
    /// excludes warm-up writes).
    pub fn reset_wear(&mut self) {
        self.dev.reset_wear();
    }

    /// Byte range of the *active* data zone (for wear CDFs restricted to
    /// it, as in Figures 12/13).
    pub fn data_zone_range(&self) -> (usize, usize) {
        (self.data.start, self.active_buckets * self.bucket_size)
    }

    /// Buckets currently in the active data zone.
    pub fn active_capacity(&self) -> usize {
        self.active_buckets
    }

    /// Reserved buckets not yet activated.
    pub fn reserve_remaining(&self) -> usize {
        self.cfg.capacity + self.cfg.reserve_buckets - self.active_buckets
    }

    /// Whether pool availability has fallen below `1 - load_factor`, i.e.
    /// the §V-C retrain/extension trigger is due.
    pub fn retrain_due(&self) -> bool {
        self.pool.availability() < 1.0 - self.cfg.load_factor
    }

    /// The shard-local half of §V-C maintenance: while the load factor is
    /// tripped and reserve remains, activate another `capacity / 4` chunk.
    /// Shared by the per-op trigger paths and the batch group executor so
    /// extension always happens at the same op boundaries.
    pub(crate) fn extend_from_reserve_if_due(&mut self) {
        if self.retrain_due() && self.reserve_remaining() > 0 {
            let chunk = (self.cfg.capacity / 4).max(1);
            self.extend_zone(chunk);
        }
    }

    /// Extends the data zone by up to `buckets` reserved buckets (§V-C).
    ///
    /// The freshly-activated addresses join the dynamic address pool under
    /// the current model's labels; nothing in the NVM hash index moves —
    /// *"our method to expand the size of a cluster does not impose any
    /// extra writes to the NVM"*. Retrain afterwards (or rely on the
    /// caller's load-factor trigger) to refresh the model on the grown
    /// zone.
    ///
    /// Returns how many buckets were activated (0 when the reserve is
    /// exhausted).
    pub fn extend_zone(&mut self, buckets: usize) -> usize {
        let add = buckets.min(self.reserve_remaining());
        let first = self.active_buckets as u32;
        for b in first..first + add as u32 {
            let vaddr = self.bucket_addr(b) + HDR_BYTES;
            self.dev
                .peek_into(vaddr, &mut self.value_buf)
                .expect("bucket in range");
            let label = self.model.predict_into(&self.value_buf, &mut self.scratch);
            self.pool.push(label, b);
        }
        self.active_buckets += add;
        self.pool.set_capacity(self.active_buckets);
        if add > 0 {
            if let Some(d) = &mut self.durable {
                // A failed append means the WAL is already dead; every
                // subsequent append fails too, so no committed record can
                // ever depend on the unlogged extension — swallowing the
                // error here is safe.
                let _ = d.log_extend(self.active_buckets as u64);
            }
        }
        add
    }

    fn bucket_addr(&self, b: u32) -> usize {
        self.data.bucket_addr(b as usize, self.bucket_size)
    }

    fn bucket_of_addr(&self, addr: u64) -> u32 {
        ((addr as usize - self.data.start) / self.bucket_size) as u32
    }

    /// Validates a value against the configured value size.
    pub fn check_value(&self, value: &[u8]) -> Result<(), PnwError> {
        check_value(&self.cfg, value)
    }

    /// Reads a bucket's stored value (without stats side effects).
    fn peek_value(&self, bucket: u32) -> Result<Vec<u8>, PnwError> {
        let addr = self.bucket_addr(bucket) + HDR_BYTES;
        Ok(self.dev.peek(addr, self.cfg.value_size)?.to_vec())
    }

    /// Physical byte address a key's bucket currently occupies (diagnostics
    /// and tests; takes no locks, records no stats).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn locate(&self, key: u64) -> Result<Option<u64>, PnwError> {
        Ok(self.index.lookup(&self.dev, key)?)
    }

    #[cfg(test)]
    pub(crate) fn index_len(&self) -> usize {
        self.index.len()
    }

    /// PUT / UPDATE (Algorithm 2 + §V-B.3) under the shard's current model
    /// snapshot.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<(OpReport, PutPath), PnwError> {
        self.check_value(value)?;
        let _w = WriteBracket::enter(&self.sync);
        let mut deferred: Option<(usize, u32)> = None;

        // UPDATE handling. The DeletePut path removes the index entry
        // directly — `remove` already returns the old address, so the
        // update costs one index probe, not a lookup followed by a removal.
        match self.cfg.update_policy {
            UpdatePolicy::InPlace => {
                if let Some(addr) = self.index.get(&mut self.dev, key)? {
                    // Latency-first: straight through the hash index.
                    let before = self.dev.stats().clone();
                    let vstats =
                        self.dev.write(addr as usize + HDR_BYTES, value, WriteMode::Diff)?;
                    self.check_durable_write()?;
                    let b = self.bucket_of_addr(addr);
                    self.labels[b as usize] = LABEL_STALE;
                    let total = self.dev.stats().since(&before).totals;
                    self.puts += 1;
                    return Ok((
                        OpReport {
                            cluster: 0,
                            fallback: false,
                            predict: Duration::ZERO,
                            value_write: vstats,
                            total_write: total,
                            modeled_latency: self.dev.modeled_write_cost(&total),
                        },
                        PutPath::InPlace,
                    ));
                }
            }
            UpdatePolicy::DeletePut => {
                // Endurance-first: free the old location (it returns to
                // the pool under its content's label), then fall through
                // to a fresh predicted write. On a durable shard the freed
                // bucket is *deferred* — it joins the pool only after the
                // replacement is WAL-committed, so a torn replacement
                // write can never land on (and corrupt) the committed old
                // value.
                if let Some(addr) = self.index.remove(&mut self.dev, key)? {
                    if self.durable.is_some() {
                        deferred = Some(self.clear_bucket(addr)?);
                    } else {
                        self.delete_bucket_only(addr)?;
                    }
                }
            }
        }

        let before = self.dev.stats().clone();

        // Algorithm 2 line 1: predict the entry. The packed bit-domain
        // kernel reads the raw bytes — no featurization, no allocation —
        // and leaves the per-cluster distances in this shard's scratch.
        let t0 = Instant::now();
        let cluster = self.model.predict_into(value, &mut self.scratch);
        let predict = t0.elapsed();
        self.predict_total += predict;

        // Line 2: get an address from the dynamic address pool. The full
        // nearest-first ranking is an argsort of the distances already in
        // scratch, computed only if the predicted cluster misses.
        let popped = {
            let (pool, scratch, model) = (&mut self.pool, &mut self.scratch, &self.model);
            pool.pop(cluster, || model.ranked_after_predict(scratch))
        };
        let (bucket, fallback) = match popped {
            Some(hit) => hit,
            None => self.forced_reuse(key, cluster, &mut deferred)?,
        };
        let addr = self.bucket_addr(bucket);

        // Lines 3–6: one differential write covers the whole bucket
        // (header + value share cache lines; writing them separately would
        // double-count dirty lines). Value-only accounting is previewed
        // first for the Figure 6 metric.
        let value_write = self.dev.diff_stats(addr + HDR_BYTES, value)?;
        self.bucket_img[0] = FLAG_VALID;
        self.bucket_img[8..16].copy_from_slice(&key.to_le_bytes());
        self.bucket_img[HDR_BYTES..].copy_from_slice(value);
        self.dev.write(addr, &self.bucket_img, WriteMode::Diff)?;
        self.check_durable_write()?;

        // Line 7: update the hash index.
        if let Err(e) = self.index.insert(&mut self.dev, key, addr as u64) {
            self.unwind_failed_insert(addr, cluster, bucket);
            return Err(e.into());
        }
        // The durable commit point: the op is acknowledged only once its
        // WAL record is fsynced. Volatile shards skip this entirely.
        if let Some(d) = &mut self.durable {
            if let Err(e) = d.log_put(key, addr as u64) {
                // Unacknowledged: roll the in-process structures back so
                // the dying store stays internally consistent. The durable
                // state is already safe — no WAL record exists, and
                // recovery clears the uncommitted header.
                let _ = self.index.remove(&mut self.dev, key);
                self.unwind_failed_insert(addr, cluster, bucket);
                return Err(e);
            }
        }
        if let Some((label, freed)) = deferred {
            self.pool.push(label, freed);
        }
        self.labels[bucket as usize] = label_u16(cluster);
        self.live += 1;
        self.puts += 1;

        let total = self.dev.stats().since(&before).totals;
        let report = OpReport {
            cluster,
            fallback,
            predict,
            value_write,
            total_write: total,
            modeled_latency: self.dev.modeled_write_cost(&total),
        };
        Ok((report, PutPath::Fresh))
    }

    /// PUT for the batch path: performs *exactly* the same device, index
    /// and pool mutations as [`ShardEngine::put`] — so batched and per-op
    /// writes are bit-for-bit identical on the device — but skips the
    /// per-op reporting that [`OpReport`] needs: no stats snapshot/delta,
    /// no value-only [`NvmDevice::diff_stats`] preview pass, no wall-clock
    /// prediction timing. [`Store::apply`](crate::Store::apply) charges the
    /// whole batch from one device-stats delta instead; the only counter
    /// the batch path does not feed is the snapshot's `predict_total`.
    pub fn put_unreported(&mut self, key: u64, value: &[u8]) -> Result<PutPath, PnwError> {
        self.check_value(value)?;
        let _w = WriteBracket::enter(&self.sync);
        let mut deferred: Option<(usize, u32)> = None;

        match self.cfg.update_policy {
            UpdatePolicy::InPlace => {
                if let Some(addr) = self.index.get(&mut self.dev, key)? {
                    self.dev
                        .write(addr as usize + HDR_BYTES, value, WriteMode::Diff)?;
                    self.check_durable_write()?;
                    let b = self.bucket_of_addr(addr);
                    self.labels[b as usize] = LABEL_STALE;
                    self.puts += 1;
                    return Ok(PutPath::InPlace);
                }
            }
            UpdatePolicy::DeletePut => {
                if let Some(addr) = self.index.remove(&mut self.dev, key)? {
                    if self.durable.is_some() {
                        deferred = Some(self.clear_bucket(addr)?);
                    } else {
                        self.delete_bucket_only(addr)?;
                    }
                }
            }
        }

        let cluster = self.model.predict_into(value, &mut self.scratch);
        let popped = {
            let (pool, scratch, model) = (&mut self.pool, &mut self.scratch, &self.model);
            pool.pop(cluster, || model.ranked_after_predict(scratch))
        };
        let (bucket, _) = match popped {
            Some(hit) => hit,
            None => self.forced_reuse(key, cluster, &mut deferred)?,
        };
        let addr = self.bucket_addr(bucket);

        self.bucket_img[0] = FLAG_VALID;
        self.bucket_img[8..16].copy_from_slice(&key.to_le_bytes());
        self.bucket_img[HDR_BYTES..].copy_from_slice(value);
        self.dev.write(addr, &self.bucket_img, WriteMode::Diff)?;
        self.check_durable_write()?;

        if let Err(e) = self.index.insert(&mut self.dev, key, addr as u64) {
            self.unwind_failed_insert(addr, cluster, bucket);
            return Err(e.into());
        }
        if let Some(d) = &mut self.durable {
            if let Err(e) = d.log_put(key, addr as u64) {
                let _ = self.index.remove(&mut self.dev, key);
                self.unwind_failed_insert(addr, cluster, bucket);
                return Err(e);
            }
        }
        if let Some((label, freed)) = deferred {
            self.pool.push(label, freed);
        }
        self.labels[bucket as usize] = label_u16(cluster);
        self.live += 1;
        self.puts += 1;
        Ok(PutPath::Fresh)
    }

    /// After a data-zone write on a durable shard: a torn write leaves the
    /// device crashed while the write call itself reports the persisted
    /// prefix — the op must surface as failed *before* it reaches the WAL
    /// (a DRAM index insert would otherwise acknowledge a torn value).
    fn check_durable_write(&self) -> Result<(), PnwError> {
        if self.durable.is_some() && self.dev.is_crashed() {
            return Err(NvmError::Crashed.into());
        }
        Ok(())
    }

    /// The pool missed while a durable DeletePut update holds the freed
    /// bucket back: at full capacity the freed bucket is the only
    /// candidate. Commit the delete first — a tear mid-rewrite must then
    /// surface as "key absent" at recovery, never as a corrupted committed
    /// value (the inherent DeletePut crash window) — and re-pop.
    fn forced_reuse(
        &mut self,
        key: u64,
        cluster: usize,
        deferred: &mut Option<(usize, u32)>,
    ) -> Result<(u32, bool), PnwError> {
        let Some((label, bucket)) = deferred.take() else {
            return Err(PnwError::Full);
        };
        self.durable
            .as_mut()
            .expect("a deferred bucket implies a durable shard")
            .log_delete(key)?;
        self.pool.push(label, bucket);
        let (pool, scratch, model) = (&mut self.pool, &mut self.scratch, &self.model);
        pool.pop(cluster, || model.ranked_after_predict(scratch))
            .ok_or(PnwError::Full)
    }

    /// Rolls back a bucket claim whose index insert failed. On a durable
    /// shard the just-written header is cleared again so a quiescent
    /// checkpoint's header scan never sees the unacknowledged key.
    fn unwind_failed_insert(&mut self, addr: usize, cluster: usize, bucket: u32) {
        if self.durable.is_some() {
            let _ = self.dev.write(addr, &[0u8], WriteMode::Diff);
        }
        self.pool.push(cluster, bucket);
    }

    /// Executes one batch group against this engine — the one loop behind
    /// both PNW frontends' [`Store::apply`](crate::Store::apply)
    /// overrides. PUTs run [`ShardEngine::put_unreported`]; after every
    /// fresh PUT the §V-C reserve extension runs at exactly the per-op
    /// path's op boundary (so a batch never reports `Full` where the same
    /// ops issued individually would have extended the zone mid-stream).
    /// Returns whether the retrain trigger became due during the group.
    ///
    /// On a durable shard the whole group is **group-committed**: WAL
    /// records accumulate in the OS page cache and one `fdatasync` at the
    /// end of the group commits them all. No op is acknowledged before
    /// `apply` returns, so the commit point the callers observe is
    /// unchanged — a crash mid-group loses only unacknowledged ops.
    ///
    /// Every [`PREDICT_SAMPLE_STRIDE`]th fresh PUT runs the fully-timed
    /// [`ShardEngine::put`] path (device-identical to the unreported one)
    /// and its prediction latency lands in `report.predict_samples`.
    pub(crate) fn apply_group(
        &mut self,
        ops: &[crate::api::Op],
        idxs: impl Iterator<Item = usize>,
        report: &mut crate::api::BatchReport,
    ) -> bool {
        use crate::api::Op;
        let _w = WriteBracket::enter(&self.sync);
        if let Some(d) = &mut self.durable {
            d.begin_group();
        }
        let mut due = false;
        let mut fresh_puts = 0u64;
        let mut last_idx = 0usize;
        for i in idxs {
            last_idx = i;
            match &ops[i] {
                Op::Put { key, value } => {
                    let res = if fresh_puts.is_multiple_of(PREDICT_SAMPLE_STRIDE) {
                        self.put(*key, value).map(|(r, path)| {
                            if path == PutPath::Fresh {
                                report.predict_samples.push(r.predict.as_nanos() as u64);
                            }
                            path
                        })
                    } else {
                        self.put_unreported(*key, value)
                    };
                    match res {
                        Ok(path) => {
                            report.puts += 1;
                            if path == PutPath::Fresh {
                                fresh_puts += 1;
                                if self.retrain_due() {
                                    self.extend_from_reserve_if_due();
                                    due = true;
                                }
                            }
                        }
                        Err(e) => report.failures.push((i, e)),
                    }
                }
                Op::Delete { key } => match self.delete(*key) {
                    Ok(existed) => {
                        report.deletes += 1;
                        report.deleted_existing += u64::from(existed);
                    }
                    Err(e) => report.failures.push((i, e)),
                },
            }
        }
        if let Some(d) = &mut self.durable {
            // The group's one commit point. A failed sync means none of
            // the group's unsynced records are durable — surface it on the
            // last op so the caller sees the group as failed.
            if let Err(e) = d.end_group() {
                report.failures.push((last_idx, e));
            }
        }
        due
    }

    /// GET (§V-B.4): through the hash index, no data-structure changes and
    /// no exclusive access — index lookup and value read both go through
    /// shared references ([`NvmDevice::peek`]), so any number of readers
    /// can run concurrently.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, PnwError> {
        self.sync.count_get();
        match self.index.lookup(&self.dev, key)? {
            Some(addr) => {
                let mut v = vec![0u8; self.cfg.value_size];
                self.dev.peek_into(addr as usize + HDR_BYTES, &mut v)?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// GET into a caller-provided buffer — the allocation-free read path
    /// ([`NvmDevice::peek_into`] straight into `out`). Returns whether the
    /// key was present; `out` is untouched when it was not.
    ///
    /// `out.len()` must equal the configured value size.
    pub fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, PnwError> {
        if out.len() != self.cfg.value_size {
            return Err(PnwError::WrongValueSize {
                expected: self.cfg.value_size,
                got: out.len(),
            });
        }
        self.sync.count_get();
        match self.index.lookup(&self.dev, key)? {
            Some(addr) => {
                self.dev.peek_into(addr as usize + HDR_BYTES, out)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// DELETE (Algorithm 3): reset the flag bit, recycle the address into
    /// the pool under its *content's* label (as the given model sees it).
    pub fn delete(&mut self, key: u64) -> Result<bool, PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        match self.index.remove(&mut self.dev, key)? {
            Some(addr) => {
                if self.durable.is_some() {
                    // Durable commit order: flag clear, then the WAL
                    // record, then the bucket joins the pool — a crash
                    // anywhere leaves the key either committed or cleanly
                    // deleted, never half-recycled.
                    let (label, bucket) = self.clear_bucket(addr)?;
                    self.check_durable_write()?;
                    self.durable
                        .as_mut()
                        .expect("checked durable")
                        .log_delete(key)?;
                    self.pool.push(label, bucket);
                } else {
                    self.delete_bucket_only(addr)?;
                }
                self.deletes += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete_bucket_only(&mut self, addr: u64) -> Result<(), PnwError> {
        let (label, bucket) = self.clear_bucket(addr)?;
        self.pool.push(label, bucket);
        Ok(())
    }

    /// Algorithm 3 minus the pool push: resets the flag bit (line 2, a
    /// one-bit NVM update) and labels the stored content (lines 3–4) —
    /// through the shard's reusable value buffer and prediction scratch,
    /// so DELETE allocates nothing. The caller decides *when* the bucket
    /// rejoins the pool (immediately for volatile shards, after the WAL
    /// commit point for durable ones).
    fn clear_bucket(&mut self, addr: u64) -> Result<(usize, u32), PnwError> {
        self.dev.write(addr as usize, &[0u8], WriteMode::Diff)?;
        let bucket = self.bucket_of_addr(addr);
        // Fast path: the label cached when this content was written is
        // still valid (same model epoch, content untouched since), and
        // prediction is deterministic — the cached label *is* what lines
        // 3–4 would compute, without the value peek or the distance scan.
        let cached = self.labels[bucket as usize];
        let label = if cached != LABEL_STALE && (cached as usize) < self.model.k() {
            cached as usize
        } else {
            let vaddr = self.bucket_addr(bucket) + HDR_BYTES;
            self.dev.peek_into(vaddr, &mut self.value_buf)?;
            self.model.predict_into(&self.value_buf, &mut self.scratch)
        };
        self.live -= 1;
        Ok((label, bucket))
    }

    /// Pre-fills every *free* bucket's cells with values from `gen`,
    /// leaving them free. This reproduces the paper's experimental setup
    /// (§VI-B: *"we first have set aside 5K buckets as the 'old data' on
    /// the NVM"*): the pool then steers incoming writes onto bit-similar
    /// stale content. Retrain afterwards so the model learns the prefilled
    /// distribution.
    pub fn prefill_free_buckets(
        &mut self,
        mut gen: impl FnMut() -> Vec<u8>,
    ) -> Result<usize, PnwError> {
        let free = self.pool.drain_all();
        let mut n = 0;
        for &bucket in &free {
            let v = gen();
            self.check_value(&v)?;
            let addr = self.bucket_addr(bucket) + HDR_BYTES;
            self.dev.write(addr, &v, WriteMode::Raw)?;
            n += 1;
        }
        // Back into the pool under the (still current) model's labels.
        let relabeled = self.labels_of(free);
        let k = self.model.k();
        self.pool.rebuild(k, relabeled);
        Ok(n)
    }

    /// Labels each bucket's stored content under the current snapshot,
    /// through the shard's reusable buffers.
    fn labels_of(&mut self, buckets: Vec<u32>) -> Vec<(u32, usize)> {
        let mut out = Vec::with_capacity(buckets.len());
        for b in buckets {
            let vaddr = self.bucket_addr(b) + HDR_BYTES;
            self.dev
                .peek_into(vaddr, &mut self.value_buf)
                .expect("bucket in range");
            let label = self.model.predict_into(&self.value_buf, &mut self.scratch);
            out.push((b, label));
        }
        out
    }

    /// Collects a training snapshot: the contents of all data-zone buckets
    /// (Algorithm 1 trains on "all the available data in the NVM storage"),
    /// subsampled to `cap` values.
    pub fn training_values(&self, cap: usize) -> Vec<Vec<u8>> {
        let idx = stride_sample(self.active_buckets, cap);
        idx.iter()
            .map(|&b| self.peek_value(b as u32).expect("bucket in range"))
            .collect()
    }

    /// Publishes a freshly-trained model snapshot to this shard: swaps the
    /// `Arc` and relabels all free buckets under the new centroids, both
    /// under the shard lock the caller already holds — readers of this
    /// shard can never see the pool and the model out of sync.
    pub fn install_model(&mut self, snapshot: Arc<ModelSnapshot>) {
        self.model = snapshot;
        let free = self.pool.drain_all();
        let relabeled = self.labels_of(free);
        let k = self.model.k();
        self.pool.rebuild(k, relabeled);
        // Cached content labels were computed under the previous model;
        // Algorithm 3 labels under the *current* one, so they all go
        // stale and refresh lazily on the next delete/overwrite.
        self.labels.fill(LABEL_STALE);
    }

    /// The shard's current model snapshot.
    pub fn model(&self) -> &Arc<ModelSnapshot> {
        &self.model
    }

    /// Simulates a power failure followed by a restart of this shard: the
    /// DRAM-side index (if [`IndexPlacement::Dram`]) and pool are discarded
    /// and rebuilt from NVM, exactly as §V-A.3 describes; the model
    /// snapshot reverts to the untrained placeholder. The caller owns the
    /// trainer and must retrain + [`ShardEngine::install_model`]
    /// afterwards (the model *"can be reconstructed after a crash"*,
    /// §V-A.1).
    pub fn recover_structures(&mut self) -> Result<(), PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        self.dev.crash();
        self.dev.recover();

        // Rebuild the index *in place* (wipe + rescan rather than a new
        // allocation): lock-free readers hold a handle to the index's
        // storage, which must stay the same object across recovery.
        match self.cfg.index {
            IndexPlacement::Dram => {
                // Scan the data zone headers.
                self.index.clear(&mut self.dev)?;
                let mut live = 0;
                for b in 0..self.active_buckets as u32 {
                    let addr = self.bucket_addr(b);
                    let hdr: [u8; HDR_BYTES] =
                        self.dev.peek(addr, HDR_BYTES)?.try_into().unwrap();
                    if hdr[0] & FLAG_VALID != 0 {
                        let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
                        self.index.insert(&mut self.dev, key, addr as u64)?;
                        live += 1;
                    }
                }
                self.live = live;
            }
            IndexPlacement::Nvm => {
                let region = self.index_region.expect("nvm index has a region");
                let idx = PathHashIndex::recover(region, self.index_leaves, &self.dev);
                self.live = idx.len();
                self.index = Box::new(idx);
            }
        }

        // Rebuild the pool from non-valid buckets under the untrained
        // single-cluster placeholder; the caller retrains next.
        let mut free_buckets = Vec::new();
        for b in 0..self.active_buckets as u32 {
            let addr = self.bucket_addr(b);
            let hdr = self.dev.peek(addr, 1)?;
            if hdr[0] & FLAG_VALID == 0 {
                free_buckets.push(b);
            }
        }
        self.pool = DynamicAddressPool::new(1, self.active_buckets);
        for b in free_buckets {
            self.pool.push(0, b);
        }
        // The model is DRAM-resident and lost with the crash; predictions
        // fall back to the untrained placeholder until the caller retrains
        // and installs (the pool above is single-cluster to match).
        self.model = Arc::new(ModelSnapshot::untrained(self.cfg.value_size * 8));
        self.labels.fill(LABEL_STALE);
        Ok(())
    }

    /// Sets the active-zone size directly (recovery: the WAL-replayed
    /// extension state), clamped to the provisioned bucket range.
    pub(crate) fn set_active_buckets(&mut self, n: usize) {
        self.active_buckets = n.min(self.cfg.capacity + self.cfg.reserve_buckets);
        self.pool.set_capacity(self.active_buckets);
    }

    /// Reconciles the data zone with the WAL-derived committed map after a
    /// crash — the step that turns "whatever the torn device holds" into
    /// exactly the committed state, before [`ShardEngine::recover_structures`]
    /// rebuilds the DRAM-side structures from the repaired zone:
    ///
    /// 1. any valid-flagged bucket whose `(key, addr)` is *not* committed
    ///    (a torn or unacknowledged put, or a committed delete whose flag
    ///    clear preceded the WAL record) has its flag cleared;
    /// 2. any committed `(key, addr)` whose flag is clear (an
    ///    unacknowledged delete or update that tore after the flag clear)
    ///    has its full header re-stamped — the value bytes are intact,
    ///    because deletion only ever touches the flag byte;
    /// 3. with an NVM-resident index, the index region (whose internal
    ///    writes are not individually WAL-framed) is zeroed and rebuilt
    ///    from the committed map alone.
    pub(crate) fn repair_after_replay(
        &mut self,
        committed: &HashMap<u64, u64>,
    ) -> Result<(), PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        self.labels.fill(LABEL_STALE);
        for b in 0..self.active_buckets as u32 {
            let addr = self.bucket_addr(b);
            let hdr: [u8; HDR_BYTES] = self.dev.peek(addr, HDR_BYTES)?.try_into().unwrap();
            let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
            let valid = hdr[0] & FLAG_VALID != 0;
            let committed_here = committed.get(&key) == Some(&(addr as u64));
            if valid && !committed_here {
                self.dev.write(addr, &[0u8], WriteMode::Diff)?;
            } else if !valid && committed_here {
                let mut fixed = [0u8; HDR_BYTES];
                fixed[0] = FLAG_VALID;
                fixed[8..16].copy_from_slice(&key.to_le_bytes());
                self.dev.write(addr, &fixed, WriteMode::Diff)?;
            }
        }
        if let Some(region) = self.index_region {
            // A torn crash can leave the path-hash region mid-update;
            // its buckets carry no CRCs, so rebuild it wholesale from the
            // committed map.
            self.dev
                .write(region.start, &vec![0u8; region.len], WriteMode::Diff)?;
            let mut idx = PathHashIndex::create(region, self.index_leaves);
            for (&key, &addr) in committed {
                idx.insert(&mut self.dev, key, addr)?;
            }
            self.index = Box::new(idx);
        }
        Ok(())
    }

    /// The committed `(key, address)` pairs as the data zone's headers
    /// state them. Only meaningful at a quiescent cut on a durable shard
    /// (no op in flight, device not crashed): then every valid-flagged
    /// header corresponds to a WAL-acknowledged put and vice versa.
    pub(crate) fn committed_entries(&self) -> Result<Vec<(u64, u64)>, PnwError> {
        let mut out = Vec::with_capacity(self.live);
        for b in 0..self.active_buckets as u32 {
            let addr = self.bucket_addr(b);
            let hdr = self.dev.peek(addr, HDR_BYTES)?;
            if hdr[0] & FLAG_VALID != 0 {
                out.push((
                    u64::from_le_bytes(hdr[8..16].try_into().unwrap()),
                    addr as u64,
                ));
            }
        }
        Ok(out)
    }

    /// Collects this shard's checkpoint contribution at a quiescent cut.
    pub(crate) fn checkpoint_state(&self) -> Result<crate::durable::ShardCheckpoint, PnwError> {
        Ok(crate::durable::ShardCheckpoint {
            active: self.active_buckets as u64,
            entries: self.committed_entries()?,
            stats: self.dev.stats().clone(),
            word_writes: self.dev.wear().word_writes().to_vec(),
            bit_flips: self.dev.wear().bit_flips().map(<[u16]>::to_vec),
        })
    }

    /// Restores checkpointed device counters after recovery repair (last,
    /// so the repair's own writes do not perturb the restored values).
    pub(crate) fn restore_device_counters(
        &mut self,
        stats: DeviceStats,
        word_writes: &[u32],
        bit_flips: Option<&[u16]>,
    ) {
        self.dev.restore_stats(stats);
        if !word_writes.is_empty() {
            self.dev.restore_wear(word_writes, bit_flips);
        }
    }

    /// Attaches the WAL appender that makes this shard durable.
    pub(crate) fn attach_durable(&mut self, d: DurableShard) {
        self.durable = Some(d);
    }

    /// Flushes the device's backing file; refuses on a crashed device (a
    /// checkpoint must never be cut from post-crash state).
    pub(crate) fn sync_device(&self) -> Result<(), PnwError> {
        if self.dev.is_crashed() {
            return Err(NvmError::Crashed.into());
        }
        Ok(self.dev.sync()?)
    }

    /// Arms a torn write on this shard's device (test hook).
    pub(crate) fn arm_torn_write(&mut self, words: usize) {
        self.dev.arm_torn_write(words);
    }

    /// Point-in-time metrics snapshot; the trainer-owned fields come from
    /// the caller as a [`TrainStats`], `k` from the shard's own snapshot.
    pub fn snapshot(&self, train: TrainStats) -> StoreSnapshot {
        StoreSnapshot {
            live: self.live,
            free: self.pool.free(),
            capacity: self.active_buckets,
            k: self.model.k(),
            retrains: train.epoch,
            train,
            fallbacks: self.pool.fallbacks(),
            device: self.dev.stats().clone(),
            predict_total: self.predict_total,
            puts: self.puts,
            gets: self.sync.gets(),
            deletes: self.deletes,
        }
    }

    /// Access to the pool (read-only).
    pub fn pool(&self) -> &DynamicAddressPool {
        &self.pool
    }

    /// Persists the device's cell image (the NVM part's durable state) to a
    /// file.
    pub fn save_image(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.dev.save_image(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardEngine>();
    }

    #[test]
    fn engine_put_get_delete_with_own_snapshot() {
        let cfg = PnwConfig::new(32, 8).with_clusters(2);
        let mut e = ShardEngine::new(cfg);
        assert_eq!(e.model().epoch(), 0, "fresh engine holds the placeholder");
        let (r, path) = e.put(1, &[0xAA; 8]).unwrap();
        assert_eq!(path, PutPath::Fresh);
        assert!(r.total_write.bit_flips > 0);
        assert_eq!(e.get(1).unwrap().unwrap(), vec![0xAA; 8]);
        assert!(e.delete(1).unwrap());
        assert_eq!(e.get(1).unwrap(), None);
        assert!(e.is_empty());
    }

    #[test]
    fn engine_get_records_no_device_reads() {
        let cfg = PnwConfig::new(16, 8).with_clusters(1);
        let mut e = ShardEngine::new(cfg);
        e.put(7, &[1; 8]).unwrap();
        let reads = e.device_stats().read_ops;
        for _ in 0..10 {
            e.get(7).unwrap();
        }
        assert_eq!(e.device_stats().read_ops, reads);
        assert_eq!(e.snapshot(TrainStats::default()).gets, 10);
    }

    #[test]
    fn in_place_put_reports_its_path() {
        let cfg = PnwConfig::new(16, 8)
            .with_clusters(1)
            .with_update_policy(UpdatePolicy::InPlace);
        let mut e = ShardEngine::new(cfg);
        let (_, p1) = e.put(5, &[0; 8]).unwrap();
        let (_, p2) = e.put(5, &[1; 8]).unwrap();
        assert_eq!(p1, PutPath::Fresh);
        assert_eq!(p2, PutPath::InPlace);
    }

    /// The batch-path PUT must leave the device in a bit-for-bit identical
    /// state to the reporting PUT — same writes, same index traffic, same
    /// pool decisions — under both update policies.
    #[test]
    fn put_unreported_matches_put_exactly() {
        for policy in [UpdatePolicy::DeletePut, UpdatePolicy::InPlace] {
            let cfg = PnwConfig::new(64, 8)
                .with_clusters(2)
                .with_seed(5)
                .with_update_policy(policy);
            let mut a = ShardEngine::new(cfg.clone());
            let mut b = ShardEngine::new(cfg);
            for round in 0..3u8 {
                for k in 0..24u64 {
                    let v = [k as u8 ^ (round * 0x3B); 8];
                    let (_, path_a) = a.put(k, &v).unwrap();
                    let path_b = b.put_unreported(k, &v).unwrap();
                    assert_eq!(path_a, path_b, "key {k} round {round}");
                }
                for k in (0..24u64).step_by(5) {
                    assert_eq!(a.delete(k).unwrap(), b.delete(k).unwrap());
                }
            }
            assert_eq!(a.device_stats(), b.device_stats(), "{policy:?}");
            assert_eq!(a.len(), b.len());
            let (sa, sb) = (
                a.snapshot(TrainStats::default()),
                b.snapshot(TrainStats::default()),
            );
            assert_eq!(sa.puts, sb.puts);
            assert_eq!(sa.free, sb.free);
        }
    }

    #[test]
    fn put_unreported_reports_full() {
        let mut e = ShardEngine::new(PnwConfig::new(2, 8).with_clusters(1));
        e.put_unreported(1, &[1; 8]).unwrap();
        e.put_unreported(2, &[2; 8]).unwrap();
        assert!(matches!(
            e.put_unreported(3, &[3; 8]),
            Err(PnwError::Full)
        ));
        assert!(matches!(
            e.put_unreported(4, &[0; 4]),
            Err(PnwError::WrongValueSize { expected: 8, got: 4 })
        ));
    }

    #[test]
    fn install_model_swaps_snapshot_and_relabels_together() {
        let cfg = PnwConfig::new(32, 8).with_clusters(2);
        let mut mgr = crate::model::ModelManager::new(&cfg);
        let mut e = ShardEngine::new(cfg);
        let values: Vec<Vec<u8>> = (0..32)
            .map(|i| vec![if i % 2 == 0 { 0x00u8 } else { 0xFF }; 8])
            .collect();
        mgr.train(&values);
        e.install_model(mgr.snapshot());
        assert_eq!(e.model().epoch(), 1);
        assert_eq!(e.model().k(), 2);
        // Pool now has one free list per cluster of the *installed* model.
        assert_eq!(e.pool().clusters(), 2);
    }
}
