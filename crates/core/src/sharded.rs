//! The sharded, thread-safe PNW store.
//!
//! [`ShardedPnwStore`] splits the data zone into N independent
//! [`ShardEngine`]s — each with its own device slice, hash index and
//! dynamic address pool — and routes every key to one shard by hash.
//! Operations on different shards run fully in parallel. Within one shard
//! the concurrency model is **single-writer / lock-free readers**:
//!
//! * **Writes (flat combining).** Each shard's engine sits behind a
//!   `Mutex`, but contended writers never convoy on it. A writer first
//!   `try_lock`s the engine; on success it executes its own op and then
//!   *drains the shard's command queue* — executing queued ops on behalf
//!   of the threads that submitted them (it is the shard's *combiner* for
//!   that moment). On failure it pushes an owned command onto the shard's
//!   bounded queue and waits on the command's slot; the current combiner
//!   executes it and fills the slot. A full queue returns
//!   [`StoreError::Backpressure`] instead of blocking — explicit feedback
//!   in place of lock convoying. A single-threaded client always wins the
//!   `try_lock`, so with `shards = 1` the store behaves byte-for-byte
//!   like the single-threaded [`PnwStore`](crate::PnwStore).
//!
//! * **Reads (seqlock validation).** GETs take **zero locks** in steady
//!   state. Each shard publishes a read view at construction — a
//!   [`CellView`] of the device cells, a lock-free [`IndexReader`], and
//!   the shard's `ShardSync` seqlock handle. A GET reads the sequence
//!   (spinning past an odd value — a write in flight), probes the index
//!   and copies the value bytes through volatile reads, then validates
//!   the sequence: unchanged means the copy is a consistent snapshot;
//!   changed means a writer raced and the GET retries. Every engine
//!   mutation brackets itself with the sequence, so a reader can never
//!   return torn bytes. [`PnwConfig::locked_reads`] routes GETs through
//!   the engine mutex instead — the before/after comparison knob for the
//!   read-scaling benchmarks.
//!
//! The ML model is the one deliberately *shared* component: the paper
//! keeps it in DRAM, read-mostly, retrained in the background
//! (§V-C/§V-A.1). Every shard holds its own `Arc` of the current
//! immutable [`ModelSnapshot`](crate::model::ModelSnapshot); the trainer
//! ([`ModelManager`]) lives behind a `Mutex` taken only at train/install
//! boundaries, with completion signalled through one `AtomicBool` the op
//! path polls (a single acquire load — false in steady state).
//!
//! Lock order is always **trainer → shard engine → shard queue**; nothing
//! acquires a lock to the left while holding one to the right, which
//! makes the set deadlock-free. Combiners run retrain maintenance only
//! *after* releasing the engine lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pnw_index::IndexReader;
use pnw_nvm_sim::{CellView, DeviceStats, WearCdf, WriteStats};

use crate::api::{Batch, BatchReport, Op, Store};
use crate::config::{BackingMode, PnwConfig, RetrainMode};
use crate::durable::{geometry_hash, DurableStore, ShardCheckpoint};
use crate::error::{PnwError, StoreError};
use crate::metrics::{OpReport, StoreSnapshot};
use crate::model::ModelManager;
use crate::shard::{
    bucket_crc, now_unix_ms, PutPath, ScanGeometry, ShardEngine, ShardSync, EXPIRY_BYTES,
    FLAG_VALID, HDR_BYTES,
};

/// One completed command's result, handed back through its [`OpSlot`].
enum CmdReply {
    Put(Result<OpReport, StoreError>),
    Delete(Result<bool, StoreError>),
    Group {
        /// Report fragment with failure indices local to the group.
        frag: BatchReport,
        /// Device-stats delta the group produced.
        delta: WriteStats,
        /// Modeled NVM latency of that delta.
        modeled: Duration,
    },
}

/// The rendezvous between a queued writer and the combiner that executes
/// its command: the combiner fills `done` and signals `cv`.
#[derive(Default)]
struct OpSlot {
    done: Mutex<Option<CmdReply>>,
    cv: Condvar,
}

impl OpSlot {
    fn fill(&self, reply: CmdReply) {
        *self.done.lock().unwrap() = Some(reply);
        self.cv.notify_one();
    }
}

/// A write command queued for a shard's current combiner. Owns its
/// operands (the submitting thread's borrows can't cross the handoff).
enum OwnedOp {
    Put {
        key: u64,
        value: Vec<u8>,
        expires_at_ms: u64,
        slot: Arc<OpSlot>,
    },
    Delete {
        key: u64,
        slot: Arc<OpSlot>,
    },
    /// One shard's slice of a [`Batch`], executed as a single group.
    Group {
        ops: Vec<Op>,
        slot: Arc<OpSlot>,
    },
}

/// One shard: the engine behind its writer mutex, the bounded command
/// queue contended writers combine through, and the lock-free read view.
struct Shard {
    engine: Mutex<ShardEngine>,
    /// Commands awaiting the current combiner; bounded by `queue_cap`.
    queue: Mutex<VecDeque<OwnedOp>>,
    queue_cap: usize,
    /// Lock-free view of the shard's device cells (stable for the
    /// engine's lifetime — the cell buffer never moves).
    view: CellView,
    /// Lock-free index probe handle; `None` falls back to locked reads.
    reader: Option<IndexReader>,
    /// The shard's seqlock + GET counter, shared with the engine.
    sync: Arc<ShardSync>,
    /// The shard's static bucket geometry, captured at construction for
    /// the lock-free scan path. Covers every *provisioned* bucket
    /// (capacity + reserve), so zone extension never invalidates it.
    geom: ScanGeometry,
}

impl Shard {
    fn wrap(engine: ShardEngine, queue_cap: usize) -> Self {
        let view = engine.cell_view();
        let reader = engine.index_reader();
        let sync = engine.sync_handle();
        let geom = engine.scan_geometry();
        Shard {
            engine: Mutex::new(engine),
            queue: Mutex::new(VecDeque::new()),
            queue_cap,
            view,
            reader,
            sync,
            geom,
        }
    }
}

/// A concurrent Predict-and-Write store: N shards behind one logical
/// key/value interface. All operations take `&self`; wrap the store in an
/// [`std::sync::Arc`] and clone it across threads.
pub struct ShardedPnwStore {
    cfg: PnwConfig,
    shards: Arc<Vec<Shard>>,
    /// The trainer: touched only at train/install boundaries, never by the
    /// op hot path (which predicts from per-shard snapshot `Arc`s).
    trainer: Mutex<ModelManager>,
    /// Set (release-ordered) by the background training thread once its
    /// model is queued; the op path polls this single atomic instead of
    /// taking any model lock.
    model_ready: Arc<AtomicBool>,
    /// Serializes zone-extension/retrain maintenance so a burst of
    /// concurrent PUTs past the load factor triggers one run, not a
    /// stampede. In [`RetrainMode::Background`] it stays set until the
    /// trained model installs.
    maintenance: AtomicBool,
    /// The durable metadata controller when the store is file-backed
    /// (superblock, per-shard WALs, checkpoints). `None` on volatile
    /// stores. Locked only at checkpoint boundaries; the per-op WAL
    /// appends go through each shard's own [`DurableShard`]
    /// (crate::durable) handle under that shard's engine lock.
    durable: Option<Mutex<DurableStore>>,
    /// Tells the background scrubber thread to exit; set in [`Drop`].
    scrub_stop: Arc<AtomicBool>,
    /// The background scrubber — spawned when [`PnwConfig::scrub_rate`]
    /// is set, joined on drop. It rotates across shards CRC-verifying a
    /// few buckets per visit under that shard's engine lock, so it is
    /// just another (rate-limited) writer in the concurrency model.
    scrub_thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ShardedPnwStore {
    fn drop(&mut self) {
        self.scrub_stop.store(true, Ordering::Release);
        if let Some(h) = self.scrub_thread.take() {
            let _ = h.join();
        }
    }
}

/// splitmix64 finalizer — the shard router. Independent of both index hash
/// functions so shard choice and in-shard placement stay uncorrelated.
fn route(key: u64) -> u64 {
    let mut x = key.wrapping_add(0x2545_F491_4F6C_DD1D);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How long a queued writer sleeps between combiner checks. Short enough
/// to bound the lost-wakeup window, long enough not to spin the core.
const SLOT_WAIT: Duration = Duration::from_micros(200);

impl ShardedPnwStore {
    /// Creates a store with `cfg.shards` shards (see
    /// [`PnwConfig::with_shards`]). `cfg.capacity` and
    /// `cfg.reserve_buckets` describe the *whole* logical store and are
    /// split as evenly as possible across shards; the shard count is
    /// clamped so every shard gets at least one bucket.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`](crate::ConfigError) message when
    /// `cfg` fails [`PnwConfig::validate`] — use [`PnwConfig::build`]
    /// first to handle invalid configurations as values.
    pub fn new(cfg: PnwConfig) -> Self {
        let cfg = cfg
            .build()
            .unwrap_or_else(|e| panic!("invalid PnwConfig: {e}"));
        assert!(
            matches!(cfg.backing, BackingMode::Volatile),
            "file-backed stores must be created with ShardedPnwStore::open"
        );
        let n = cfg.shards.max(1).min(cfg.capacity.max(1));
        let cap = cfg.shard_queue_depth.max(1);
        let shards: Arc<Vec<Shard>> = Arc::new(
            (0..n)
                .map(|i| {
                    let mut engine = ShardEngine::new(shard_config(&cfg, n, i));
                    engine.set_shard_id(i);
                    Shard::wrap(engine, cap)
                })
                .collect(),
        );
        let trainer = Mutex::new(ModelManager::new(&cfg));
        let scrub_stop = Arc::new(AtomicBool::new(false));
        let scrub_thread = spawn_scrubber(&cfg, &shards, &scrub_stop);
        ShardedPnwStore {
            cfg,
            shards,
            trainer,
            model_ready: Arc::new(AtomicBool::new(false)),
            maintenance: AtomicBool::new(false),
            durable: None,
            scrub_stop,
            scrub_thread,
        }
    }

    /// Opens a store according to `cfg.backing`.
    ///
    /// * [`BackingMode::Volatile`] — equivalent to [`ShardedPnwStore::new`]
    ///   but non-panicking on invalid configs.
    /// * [`BackingMode::File`] — opens (or initializes) the durable
    ///   directory. Each shard gets its own backing file and WAL; one
    ///   superblock/checkpoint pair covers them all, so a checkpoint is
    ///   atomic across shards. Recovery replays every shard's WAL over the
    ///   last checkpoint and repairs each shard's data zone to exactly its
    ///   committed key set.
    pub fn open(cfg: PnwConfig) -> Result<Self, StoreError> {
        let cfg = cfg.build()?;
        let BackingMode::File(dir) = cfg.backing.clone() else {
            return Ok(ShardedPnwStore::new(cfg));
        };
        let n = cfg.shards.max(1).min(cfg.capacity.max(1));
        let initial = (0..n)
            .map(|i| ShardCheckpoint::fresh(split(cfg.capacity, n, i) as u64))
            .collect();
        let (durable, recovered, fresh) =
            DurableStore::open(&dir, geometry_hash(&cfg, n), cfg.value_size, initial)?;
        let cap = cfg.shard_queue_depth.max(1);
        let mut shards = Vec::with_capacity(n);
        for (i, rec) in recovered.into_iter().enumerate() {
            let mut engine =
                ShardEngine::open_file(shard_config(&cfg, n, i), durable.data_path(i))?;
            engine.set_shard_id(i);
            engine.set_active_buckets(rec.active as usize);
            // Retirement is restored before repair so neither the repair
            // pass nor pool recovery resurrects a retired bucket.
            engine.restore_retired(&rec.retired);
            engine.repair_after_replay(&rec.committed)?;
            engine.recover_structures()?;
            engine.reindex_retired_committed(&rec.committed)?;
            // Counters restore last so the repair's own writes don't
            // perturb the checkpointed values.
            engine.restore_device_counters(rec.stats, &rec.word_writes, rec.bit_flips.as_deref());
            let mut appender = durable.wal_appender(i)?;
            appender.preload_values(rec.values);
            engine.attach_durable(appender);
            shards.push(Shard::wrap(engine, cap));
        }
        let shards = Arc::new(shards);
        let trainer = Mutex::new(ModelManager::new(&cfg));
        let scrub_stop = Arc::new(AtomicBool::new(false));
        let scrub_thread = spawn_scrubber(&cfg, &shards, &scrub_stop);
        let store = ShardedPnwStore {
            cfg,
            shards,
            trainer,
            model_ready: Arc::new(AtomicBool::new(false)),
            maintenance: AtomicBool::new(false),
            durable: Some(Mutex::new(durable)),
            scrub_stop,
            scrub_thread,
        };
        if !fresh && !store.is_empty() {
            // The model is DRAM-resident and died with the process;
            // reconstruct it from the recovered data zones (§V-A.1).
            store.retrain_now()?;
        }
        Ok(store)
    }

    /// Cuts a durable checkpoint: quiesces writers by holding every
    /// shard's engine lock, flushes each device backing, snapshots the
    /// committed state of all shards and runs the write-new → fsync →
    /// rename → superblock-bump protocol once for the whole store. Every
    /// shard WAL is truncated afterwards. No-op on a volatile store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let mut durable = durable.lock().unwrap();
        // Engine locks taken in shard order (a cross-shard quiescent
        // point; in-flight seqlock readers don't touch durable state).
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.engine.lock().unwrap()).collect();
        let mut states = Vec::with_capacity(guards.len());
        for g in &guards {
            g.sync_device()?;
            states.push(g.checkpoint_state()?);
        }
        durable.checkpoint(&states)?;
        // The WALs were truncated; drop the in-memory value mirrors that
        // backed scrub repairs for the truncated records.
        for g in &mut guards {
            g.clear_wal_values();
        }
        Ok(())
    }

    /// Closes the store cleanly: cuts a final checkpoint (on a durable
    /// store) and drops it.
    pub fn close(self) -> Result<(), StoreError> {
        self.checkpoint()
    }

    /// Whether this store persists to a file backing.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The shard a key routes to — lets crash tests aim
    /// [`ShardedPnwStore::arm_torn_write`] at the right shard.
    pub fn shard_of_key(&self, key: u64) -> usize {
        self.shard_of(key)
    }

    /// Arms a torn write on one shard's device: that shard's next
    /// data-zone write persists only `words` whole words and the device
    /// crashes (test hook for crash-consistency scenarios).
    pub fn arm_torn_write(&self, shard: usize, words: usize) {
        self.shards[shard].engine.lock().unwrap().arm_torn_write(words);
    }

    /// Arms a deterministic metadata tear (superblock / WAL / checkpoint)
    /// on a durable store; no-op on a volatile one (test hook).
    pub fn arm_meta_tear(&self, tear: pnw_nvm_sim::MetaTear) {
        if let Some(d) = &self.durable {
            d.lock().unwrap().arm_meta_tear(tear);
        }
    }

    /// Runs `f` while holding one shard's engine lock (test hook: the
    /// torn-read stress suite uses it to prove GETs complete while a
    /// writer owns the shard, and to force writers onto the queue path).
    #[doc(hidden)]
    pub fn with_shard_write_held<R>(&self, shard: usize, f: impl FnOnce() -> R) -> R {
        let _g = self.shards[shard].engine.lock().unwrap();
        f()
    }

    /// The store's configuration (capacity fields describe the whole
    /// logical store).
    pub fn config(&self) -> &PnwConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (route(key) % self.shards.len() as u64) as usize
        }
    }

    /// PUT / UPDATE (Algorithm 2 + §V-B.3), routed to the key's shard.
    ///
    /// Takes **zero model locks**: the prediction reads the shard's own
    /// snapshot `Arc`, and the only model-related cost in steady state is
    /// one relaxed-false atomic load of the background-completion flag.
    /// On an uncontended shard the engine `try_lock` succeeds and the op
    /// runs inline; on a contended one the op is queued for the shard's
    /// current combiner (see the [module docs](self)).
    pub fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, PnwError> {
        self.put_with_expiry(key, value, 0)
    }

    /// PUT with an absolute TTL deadline in unix milliseconds
    /// (`0` = never expires; see [`now_unix_ms`]). Identical to
    /// [`ShardedPnwStore::put`] otherwise — same routing, combining and
    /// retrain policy. Requires [`PnwConfig::with_ttl`]; without the
    /// expiry zone the deadline is silently dropped.
    pub fn put_with_expiry(
        &self,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
    ) -> Result<OpReport, PnwError> {
        crate::shard::check_value(&self.cfg, value)?;
        self.install_if_ready();
        let sid = self.shard_of(key);
        let sh = &self.shards[sid];
        if let Ok(mut eng) = sh.engine.try_lock() {
            let mut due = false;
            let res = Self::exec_put(&mut eng, key, value, expires_at_ms, &mut due);
            due |= self.drain_queue(sh, &mut eng);
            drop(eng);
            self.finish_write(sh, due);
            return res;
        }
        let slot = Arc::new(OpSlot::default());
        self.enqueue(
            sid,
            OwnedOp::Put {
                key,
                value: value.to_vec(),
                expires_at_ms,
                slot: Arc::clone(&slot),
            },
        )?;
        match self.await_slot(sh, &slot) {
            CmdReply::Put(res) => res,
            _ => unreachable!("a put slot carries a put reply"),
        }
    }

    /// One PUT against a held engine, with the §V-C reserve extension at
    /// the same op boundary as the batch path.
    fn exec_put(
        eng: &mut ShardEngine,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
        due: &mut bool,
    ) -> Result<OpReport, PnwError> {
        let (report, path) = eng.put_with_expiry(key, value, expires_at_ms)?;
        if path == PutPath::Fresh && eng.retrain_due() {
            eng.extend_from_reserve_if_due();
            *due = true;
        }
        Ok(report)
    }

    /// GET (§V-B.4): **zero locks** in steady state. The shard's index
    /// reader and cell view are probed under seqlock validation — an
    /// uncontended read costs two sequence loads on top of the probe, and
    /// a read racing a writer retries until it observes a quiet interval.
    /// With [`PnwConfig::locked_reads`] the GET takes the engine lock
    /// instead (the pre-seqlock behavior, kept as a benchmark baseline).
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, PnwError> {
        let mut v = vec![0u8; self.cfg.value_size];
        Ok(self.get_into(key, &mut v)?.then_some(v))
    }

    /// GET into a caller-provided buffer of exactly `value_size` bytes —
    /// the allocation-free read path (clients reuse one buffer across
    /// operations). Returns whether the key was present.
    pub fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, PnwError> {
        if out.len() != self.cfg.value_size {
            return Err(PnwError::WrongValueSize {
                expected: self.cfg.value_size,
                got: out.len(),
            });
        }
        let sh = &self.shards[self.shard_of(key)];
        if self.cfg.locked_reads {
            return sh.engine.lock().unwrap().get_into(key, out);
        }
        let Some(reader) = &sh.reader else {
            return sh.engine.lock().unwrap().get_into(key, out);
        };
        loop {
            let s1 = sh.sync.read_begin();
            let found = match reader.lookup(&sh.view, key) {
                Some(addr) => {
                    // TTL: a key past its deadline reads as absent — the
                    // same lazy-expiry contract as the locked path. A torn
                    // expiry word fails validation and retries like any
                    // other racing read.
                    if let Some(expiry_start) = sh.geom.expiry_start {
                        let b = (addr as usize - sh.geom.data_start) / sh.geom.bucket_size;
                        let mut d = [0u8; EXPIRY_BYTES];
                        if !sh.view.read_into(expiry_start + b * EXPIRY_BYTES, &mut d) {
                            if sh.sync.read_validate(s1) {
                                return sh.engine.lock().unwrap().get_into(key, out);
                            }
                            continue;
                        }
                        let deadline = u64::from_le_bytes(d);
                        if deadline != 0 && deadline <= now_unix_ms() {
                            if sh.sync.read_validate(s1) {
                                sh.sync.count_get();
                                return Ok(false);
                            }
                            continue;
                        }
                    }
                    if sh.view.read_into(addr as usize + HDR_BYTES, out) {
                        if self.cfg.integrity {
                            // End-to-end verification on the lock-free
                            // path: copy the sealed header and check the
                            // key + CRC against the value bytes we just
                            // read. Only a *validated* snapshot can be
                            // declared corrupt — an invalid one is just
                            // a racing writer and retries.
                            let mut hdr = [0u8; HDR_BYTES];
                            if !sh.view.read_into(addr as usize, &mut hdr)
                                || !sh.sync.read_validate(s1)
                            {
                                continue;
                            }
                            let stored_key =
                                u64::from_le_bytes(hdr[8..16].try_into().unwrap());
                            let stored_crc =
                                u32::from_le_bytes(hdr[4..8].try_into().unwrap());
                            if stored_key != key || stored_crc != bucket_crc(key, out) {
                                // A consistent snapshot that fails CRC is
                                // media corruption, not a torn read. The
                                // locked path re-verifies and surfaces
                                // the typed error with key and shard.
                                return sh.engine.lock().unwrap().get_into(key, out);
                            }
                            sh.sync.count_get();
                            return Ok(true);
                        }
                        true
                    } else if sh.sync.read_validate(s1) {
                        // The address validated yet points outside the
                        // device: not a torn read — let the locked path
                        // surface the real device error.
                        return sh.engine.lock().unwrap().get_into(key, out);
                    } else {
                        // Torn probe produced a garbage address; retry.
                        continue;
                    }
                }
                None => false,
            };
            if sh.sync.read_validate(s1) {
                sh.sync.count_get();
                return Ok(found);
            }
        }
    }

    /// DELETE (Algorithm 3), routed to the key's shard. Like PUT, takes no
    /// model lock, and combines through the shard queue under contention.
    pub fn delete(&self, key: u64) -> Result<bool, PnwError> {
        self.install_if_ready();
        let sid = self.shard_of(key);
        let sh = &self.shards[sid];
        if let Ok(mut eng) = sh.engine.try_lock() {
            let res = eng.delete(key);
            let due = self.drain_queue(sh, &mut eng);
            drop(eng);
            self.finish_write(sh, due);
            return res;
        }
        let slot = Arc::new(OpSlot::default());
        self.enqueue(
            sid,
            OwnedOp::Delete {
                key,
                slot: Arc::clone(&slot),
            },
        )?;
        match self.await_slot(sh, &slot) {
            CmdReply::Delete(res) => res,
            _ => unreachable!("a delete slot carries a delete reply"),
        }
    }

    /// Ordered range scan over `lo..=hi` across every shard, ascending by
    /// key. Each shard contributes a **seqlock-consistent snapshot**: its
    /// buckets are walked through the lock-free cell view inside one
    /// `read_begin`/`read_validate` bracket, so no returned value is ever
    /// torn — but the per-shard snapshots are taken at slightly different
    /// instants, not one global cut (see [`Store::scan`] for the
    /// contract). A shard under heavy write traffic that keeps failing
    /// validation falls back to a brief engine-locked scan. Entries whose
    /// TTL deadline has passed are excluded; entries failing CRC are
    /// skipped (point GETs surface those loudly).
    pub fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, PnwError> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        for sid in 0..self.shards.len() {
            self.scan_shard(sid, lo, hi, &mut out)?;
        }
        // Shards partition the key space by hash, so keys are unique
        // across shards and one sort yields the global order.
        out.sort_unstable_by_key(|&(k, _)| k);
        Ok(out)
    }

    /// One shard's contribution to [`ShardedPnwStore::scan`]: the
    /// lock-free walk with retry, or the engine-locked fallback when
    /// `locked_reads` is set, no index reader exists, or validation keeps
    /// losing to writers.
    fn scan_shard(
        &self,
        sid: usize,
        lo: u64,
        hi: u64,
        out: &mut Vec<(u64, Vec<u8>)>,
    ) -> Result<(), PnwError> {
        /// Whole-shard snapshot attempts before conceding to the lock.
        const SCAN_RETRIES: usize = 8;
        let sh = &self.shards[sid];
        let reader = if self.cfg.locked_reads { None } else { sh.reader.as_ref() };
        let Some(reader) = reader else {
            out.extend(sh.engine.lock().unwrap().scan_range(lo, hi)?);
            return Ok(());
        };
        let geom = sh.geom;
        let now = now_unix_ms();
        'attempt: for _ in 0..SCAN_RETRIES {
            let s1 = sh.sync.read_begin();
            let mut acc: Vec<(u64, Vec<u8>)> = Vec::new();
            for b in 0..geom.buckets {
                let base = geom.data_start + b * geom.bucket_size;
                let mut hdr = [0u8; HDR_BYTES];
                if !sh.view.read_into(base, &mut hdr) {
                    // Provisioned buckets are always in range; treat a
                    // refused read like a failed validation.
                    continue 'attempt;
                }
                if hdr[0] & FLAG_VALID == 0 {
                    continue;
                }
                let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
                if key < lo || key > hi {
                    continue;
                }
                // Index authority: a valid-looking header whose key maps
                // elsewhere (or nowhere) is a stale image — a retired
                // bucket's last contents, or a racing writer mid-move.
                if reader.lookup(&sh.view, key) != Some(base as u64) {
                    continue;
                }
                if let Some(expiry_start) = geom.expiry_start {
                    let mut d = [0u8; EXPIRY_BYTES];
                    if !sh.view.read_into(expiry_start + b * EXPIRY_BYTES, &mut d) {
                        continue 'attempt;
                    }
                    let deadline = u64::from_le_bytes(d);
                    if deadline != 0 && deadline <= now {
                        continue;
                    }
                }
                let mut value = vec![0u8; geom.value_size];
                if !sh.view.read_into(base + HDR_BYTES, &mut value) {
                    continue 'attempt;
                }
                if geom.integrity {
                    let stored_crc = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
                    if stored_crc != bucket_crc(key, &value) {
                        if !sh.sync.read_validate(s1) {
                            // Torn bytes from a racing writer, not media
                            // damage — retake the whole snapshot.
                            continue 'attempt;
                        }
                        // A validated snapshot that fails CRC is real
                        // corruption; scans skip it (the contract) and
                        // point GETs report it.
                        continue;
                    }
                }
                acc.push((key, value));
            }
            if sh.sync.read_validate(s1) {
                out.append(&mut acc);
                return Ok(());
            }
        }
        out.extend(sh.engine.lock().unwrap().scan_range(lo, hi)?);
        Ok(())
    }

    /// Pushes a command onto the shard's bounded queue, or rejects it with
    /// [`StoreError::Backpressure`] — naming the shard and its queue depth
    /// — when the combiner is saturated.
    fn enqueue(&self, sid: usize, op: OwnedOp) -> Result<(), StoreError> {
        let sh = &self.shards[sid];
        let mut q = sh.queue.lock().unwrap();
        if q.len() >= sh.queue_cap {
            return Err(StoreError::Backpressure {
                shard: sid,
                depth: q.len(),
            });
        }
        q.push_back(op);
        Ok(())
    }

    /// Waits for a queued command's reply, opportunistically becoming the
    /// combiner if the engine frees up first (which also executes our own
    /// queued command). The timed wait bounds the window where a combiner
    /// released the engine between our queue push and its final drain.
    fn await_slot(&self, sh: &Shard, slot: &Arc<OpSlot>) -> CmdReply {
        loop {
            if let Some(reply) = slot.done.lock().unwrap().take() {
                return reply;
            }
            if let Ok(mut eng) = sh.engine.try_lock() {
                let due = self.drain_queue(sh, &mut eng);
                drop(eng);
                self.finish_write(sh, due);
                continue;
            }
            let done = slot.done.lock().unwrap();
            if done.is_some() {
                continue;
            }
            let _ = slot.cv.wait_timeout(done, SLOT_WAIT).unwrap();
        }
    }

    /// Executes every queued command against the held engine (the flat
    /// combining drain). Returns whether any op made retraining due.
    fn drain_queue(&self, sh: &Shard, eng: &mut ShardEngine) -> bool {
        let mut due = false;
        loop {
            let op = sh.queue.lock().unwrap().pop_front();
            let Some(op) = op else { break };
            match op {
                OwnedOp::Put {
                    key,
                    value,
                    expires_at_ms,
                    slot,
                } => {
                    let res = Self::exec_put(eng, key, &value, expires_at_ms, &mut due);
                    slot.fill(CmdReply::Put(res));
                }
                OwnedOp::Delete { key, slot } => {
                    slot.fill(CmdReply::Delete(eng.delete(key)));
                }
                OwnedOp::Group { ops, slot } => {
                    let mut frag = BatchReport::default();
                    let before = eng.device_stats().clone();
                    due |= eng.apply_group(&ops, 0..ops.len(), &mut frag);
                    let delta = eng.device_stats().since(&before).totals;
                    let modeled = eng.device().modeled_write_cost(&delta);
                    slot.fill(CmdReply::Group {
                        frag,
                        delta,
                        modeled,
                    });
                }
            }
        }
        due
    }

    /// Post-release duties of a combiner: run the retrain policy (never
    /// while holding the engine — lock order), then close the race window
    /// where a writer queued between our last drain and the lock release.
    /// Waiters also self-recover via their timed wait, so one recheck is
    /// enough.
    fn finish_write(&self, sh: &Shard, due: bool) {
        if due {
            self.trigger_retrain_policy();
        }
        if !sh.queue.lock().unwrap().is_empty() {
            if let Ok(mut eng) = sh.engine.try_lock() {
                let due = self.drain_queue(sh, &mut eng);
                drop(eng);
                if due {
                    self.trigger_retrain_policy();
                }
            }
        }
    }

    /// Live key count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.lock().unwrap().len())
            .sum()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cross-shard device statistics: the sum of every shard's counters,
    /// exactly what one device serving the combined traffic would report
    /// (the shards tile one logical address space).
    pub fn device_stats(&self) -> DeviceStats {
        let parts = self.per_shard_device_stats();
        DeviceStats::merged(parts.iter())
    }

    /// Per-shard device statistics, in shard order.
    pub fn per_shard_device_stats(&self) -> Vec<DeviceStats> {
        self.shards
            .iter()
            .map(|s| s.engine.lock().unwrap().device_stats().clone())
            .collect()
    }

    /// Clears every shard's device statistics (measurement windows exclude
    /// warm-up traffic).
    pub fn reset_device_stats(&self) {
        for s in self.shards.iter() {
            s.engine.lock().unwrap().reset_device_stats();
        }
    }

    /// Highest write count observed on any single NVM word, across all
    /// shards — the wear hot spot that bounds the whole store's lifetime.
    pub fn max_word_writes(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| s.engine.lock().unwrap().device().max_word_writes())
            .max()
            .unwrap_or(0)
    }

    /// Figure-12-style per-word wear CDF over the *combined* active data
    /// zones of all shards (the per-shard CDFs merged into one
    /// population).
    pub fn word_wear_cdf(&self) -> WearCdf {
        let mut merged: Option<WearCdf> = None;
        for s in self.shards.iter() {
            let shard = s.engine.lock().unwrap();
            let (start, len) = shard.data_zone_range();
            let cdf = shard.device().word_wear_cdf(start, len);
            merged = Some(match merged {
                Some(m) => m.merge(&cdf),
                None => cdf,
            });
        }
        merged.expect("at least one shard")
    }

    /// Aggregated point-in-time snapshot: counters summed across shards,
    /// train stats from the shared trainer.
    pub fn snapshot(&self) -> StoreSnapshot {
        let train = self.trainer.lock().unwrap().train_stats();
        let mut parts = self
            .shards
            .iter()
            .map(|s| s.engine.lock().unwrap().snapshot(train.clone()));
        let mut agg = parts.next().expect("at least one shard");
        for p in parts {
            agg.live += p.live;
            agg.free += p.free;
            agg.capacity += p.capacity;
            agg.fallbacks += p.fallbacks;
            agg.device.merge(&p.device);
            agg.predict_total += p.predict_total;
            agg.puts += p.puts;
            agg.gets += p.gets;
            agg.deletes += p.deletes;
            agg.scrub.merge(&p.scrub);
        }
        agg
    }

    /// Runs one full synchronous scrub pass over every shard — every
    /// valid bucket is CRC-verified, proactively relocated off stuck
    /// media, repaired from the durable layer or retired — and returns
    /// the aggregated cumulative scrub counters. The background scrubber
    /// ([`PnwConfig::with_scrub`]) does the same work incrementally.
    pub fn scrub_pass(&self) -> Result<crate::metrics::ScrubStats, StoreError> {
        let mut agg = crate::metrics::ScrubStats::default();
        for s in self.shards.iter() {
            agg.merge(&s.engine.lock().unwrap().scrub_pass()?);
        }
        Ok(agg)
    }

    /// Forces one stuck-at bit inside the stored value of `key` (bit
    /// offset `bit` within the value, stuck at one or zero). Returns
    /// whether the key was present. Test hook for corruption scenarios —
    /// the production analogue is wear-out latching cells on its own.
    pub fn arm_stuck_at_key(
        &self,
        key: u64,
        bit: u32,
        stuck_at_one: bool,
    ) -> Result<bool, StoreError> {
        self.shards[self.shard_of(key)]
            .engine
            .lock()
            .unwrap()
            .arm_stuck_at_key(key, bit, stuck_at_one)
    }

    /// Training snapshot across every shard's active data zone, capped at
    /// `train_sample` values total (split evenly across shards).
    fn training_snapshot(&self) -> Vec<Vec<u8>> {
        let per_shard = self.cfg.train_sample.div_ceil(self.shards.len());
        let mut values = Vec::new();
        for s in self.shards.iter() {
            values.extend(s.engine.lock().unwrap().training_values(per_shard));
        }
        values
    }

    /// Trains the shared model synchronously on all shards' data zones and
    /// publishes the new snapshot — swapping each shard's `Arc` and
    /// relabeling its pool under that shard's lock (Algorithm 1,
    /// cross-shard). Blocks writers for the duration; prefer
    /// [`RetrainMode::Background`] under live traffic. Returns training
    /// time.
    pub fn retrain_now(&self) -> Result<Duration, PnwError> {
        let snapshot = self.training_snapshot();
        let mut trainer = self.trainer.lock().unwrap();
        let elapsed = trainer.train(&snapshot);
        self.publish(&trainer);
        Ok(elapsed)
    }

    /// Starts a background retraining run if none is pending (§V-C). The
    /// new model is installed — and every shard's pool relabeled — at a
    /// later operation boundary.
    pub fn retrain_in_background(&self) {
        let snapshot = self.training_snapshot();
        let mut trainer = self.trainer.lock().unwrap();
        if !trainer.training_in_progress() {
            trainer.train_in_background_with(snapshot, Some(Arc::clone(&self.model_ready)));
        }
    }

    /// Blocks until an in-flight background retrain (if any) installs, then
    /// publishes the snapshot to every shard.
    pub fn wait_for_retrain(&self) {
        let mut trainer = self.trainer.lock().unwrap();
        if trainer.wait_for_background() {
            self.publish(&trainer);
            self.model_ready.store(false, Ordering::Release);
            self.maintenance.store(false, Ordering::Release);
        }
    }

    /// Whether the shared model has completed at least one training run.
    pub fn is_trained(&self) -> bool {
        self.trainer.lock().unwrap().is_trained()
    }

    /// Completed training runs of the shared model.
    pub fn retrains(&self) -> u64 {
        self.trainer.lock().unwrap().retrains()
    }

    /// Model epoch (install/swap count) of the published snapshot.
    pub fn model_epoch(&self) -> u64 {
        self.trainer.lock().unwrap().snapshot().epoch()
    }

    /// Publishes the trainer's current snapshot to every shard: one `Arc`
    /// swap + pool relabel per shard, each under that shard's engine lock.
    fn publish(&self, trainer: &ModelManager) {
        let snapshot = trainer.snapshot();
        for s in self.shards.iter() {
            s.engine
                .lock()
                .unwrap()
                .install_model(Arc::clone(&snapshot));
        }
    }

    /// Steady-state fast path: one atomic load. Only when the background
    /// trainer has signalled completion does an op thread take the trainer
    /// lock (non-blocking — a loser skips, the winner publishes).
    fn install_if_ready(&self) {
        if !self.model_ready.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut trainer) = self.trainer.try_lock() else {
            return;
        };
        if trainer.try_install_background() {
            self.publish(&trainer);
            self.model_ready.store(false, Ordering::Release);
            self.maintenance.store(false, Ordering::Release);
        } else if !trainer.training_in_progress() {
            // Stale flag: the run was consumed by wait_for_retrain, or its
            // thread panicked (the completion flag fires on unwind too and
            // try_install_background just saw Disconnected). Clear both
            // flags so the fast path stays fast and a later due PUT can
            // start a fresh retrain instead of wedging forever.
            self.model_ready.store(false, Ordering::Release);
            self.maintenance.store(false, Ordering::Release);
        }
    }

    /// The cross-shard half of maintenance: start (or run) a retrain per
    /// policy, serialized by the `maintenance` flag. Takes no shard lock
    /// up front (lock order stays trainer → shard).
    fn trigger_retrain_policy(&self) {
        if self.cfg.retrain == RetrainMode::Manual {
            return;
        }
        if self
            .maintenance
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        match self.cfg.retrain {
            RetrainMode::Manual => unreachable!("handled above"),
            RetrainMode::OnLoadFactor => {
                let _ = self.retrain_now();
                self.maintenance.store(false, Ordering::Release);
            }
            RetrainMode::Background => {
                let snapshot = self.training_snapshot();
                let mut trainer = self.trainer.lock().unwrap();
                if trainer.training_in_progress() {
                    // A run is already pending; let its install clear the flag.
                } else {
                    trainer.train_in_background_with(
                        snapshot,
                        Some(Arc::clone(&self.model_ready)),
                    );
                }
                // The maintenance flag stays set until install_if_ready()
                // swaps the model in — that is what stops every subsequent
                // PUT from re-snapshotting the data zone.
            }
        }
    }
}

impl Store for ShardedPnwStore {
    fn name(&self) -> &'static str {
        "PNW-sharded"
    }

    fn value_size(&self) -> usize {
        self.cfg.value_size
    }

    fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, StoreError> {
        ShardedPnwStore::put(self, key, value)
    }

    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        ShardedPnwStore::get(self, key)
    }

    fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        ShardedPnwStore::get_into(self, key, out)
    }

    fn delete(&self, key: u64) -> Result<bool, StoreError> {
        ShardedPnwStore::delete(self, key)
    }

    fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        ShardedPnwStore::scan(self, lo, hi)
    }

    fn put_with_expiry(
        &self,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
    ) -> Result<OpReport, StoreError> {
        ShardedPnwStore::put_with_expiry(self, key, value, expires_at_ms)
    }

    fn supports_ttl(&self) -> bool {
        self.cfg.ttl_enabled
    }

    fn len(&self) -> usize {
        ShardedPnwStore::len(self)
    }

    fn snapshot(&self) -> StoreSnapshot {
        ShardedPnwStore::snapshot(self)
    }

    fn device_stats(&self) -> DeviceStats {
        ShardedPnwStore::device_stats(self)
    }

    fn reset_device_stats(&self) {
        ShardedPnwStore::reset_device_stats(self)
    }

    fn max_word_writes(&self) -> u32 {
        ShardedPnwStore::max_word_writes(self)
    }

    fn checkpoint(&self) -> Result<(), StoreError> {
        ShardedPnwStore::checkpoint(self)
    }

    /// Batched writes, the sharded store's centerpiece: the batch is
    /// grouped by shard and each shard's group runs under one engine
    /// acquisition — predicting through the shard's already-resident
    /// model snapshot `Arc`, reusing the shard's prediction scratch and
    /// bucket-image buffers across every op in the group, and (on a
    /// durable store) group-committing the whole group with one WAL
    /// fsync. A shard whose engine is held by another thread receives its
    /// group through the combining queue instead of blocking on the lock;
    /// a saturated queue fails that shard's ops with
    /// [`StoreError::Backpressure`] while other shards' groups proceed.
    fn apply(&self, batch: &Batch) -> BatchReport {
        self.install_if_ready();
        let mut report = BatchReport::default();
        // Group op indices by shard with one counting sort (two flat
        // arrays, no per-shard Vec allocations), preserving batch order
        // within each shard — ops on one key always route to one shard,
        // so per-key order is exactly submission order.
        let ops = batch.ops();
        let n_shards = self.shards.len();
        let mut shard_of_op: Vec<u32> = Vec::with_capacity(ops.len());
        let mut counts = vec![0usize; n_shards + 1];
        for op in ops {
            let sid = self.shard_of(op.key());
            shard_of_op.push(sid as u32);
            counts[sid + 1] += 1;
        }
        for sid in 0..n_shards {
            counts[sid + 1] += counts[sid];
        }
        let mut ordered = vec![0u32; ops.len()];
        let mut cursor = counts.clone();
        for (i, &sid) in shard_of_op.iter().enumerate() {
            ordered[cursor[sid as usize]] = i as u32;
            cursor[sid as usize] += 1;
        }
        let mut retrain_due = false;
        // Shard groups whose engine was contended, awaiting a combiner.
        let mut pending: Vec<(usize, Arc<OpSlot>, &[u32])> = Vec::new();
        for sid in 0..n_shards {
            let idxs = &ordered[counts[sid]..counts[sid + 1]];
            if idxs.is_empty() {
                continue;
            }
            let sh = &self.shards[sid];
            if let Ok(mut eng) = sh.engine.try_lock() {
                let before = eng.device_stats().clone();
                // Reserve extension runs inside the group at the per-op
                // path's op boundaries, still under this one acquisition.
                retrain_due |=
                    eng.apply_group(ops, idxs.iter().map(|&i| i as usize), &mut report);
                let delta = eng.device_stats().since(&before).totals;
                report.write_stats += delta;
                report.modeled_latency += eng.device().modeled_write_cost(&delta);
                retrain_due |= self.drain_queue(sh, &mut eng);
                drop(eng);
                // Retrain policy runs once after all groups; only the
                // queue recheck half of finish_write happens here.
                self.finish_write(sh, false);
            } else {
                let sub: Vec<Op> = idxs.iter().map(|&i| ops[i as usize].clone()).collect();
                let slot = Arc::new(OpSlot::default());
                match self.enqueue(sid, OwnedOp::Group { ops: sub, slot: Arc::clone(&slot) }) {
                    Ok(()) => pending.push((sid, slot, idxs)),
                    Err(e) => {
                        for &i in idxs {
                            report.failures.push((i as usize, e.clone()));
                        }
                    }
                }
            }
        }
        for (sid, slot, idxs) in pending {
            let CmdReply::Group {
                frag,
                delta,
                modeled,
            } = self.await_slot(&self.shards[sid], &slot)
            else {
                unreachable!("a group slot carries a group reply");
            };
            report.puts += frag.puts;
            report.deletes += frag.deletes;
            report.deleted_existing += frag.deleted_existing;
            report.write_stats += delta;
            report.modeled_latency += modeled;
            report.predict_samples.extend(frag.predict_samples);
            // The queued group saw local indices 0..len; map back to
            // batch positions.
            for (local, e) in frag.failures {
                report.failures.push((idxs[local] as usize, e));
            }
        }
        if retrain_due {
            self.trigger_retrain_policy();
        }
        // Shard grouping visits ops out of submission order; report
        // failures by batch index regardless.
        report.failures.sort_by_key(|&(i, _)| i);
        report
    }
}

fn split(total: usize, parts: usize, i: usize) -> usize {
    total / parts + usize::from(i < total % parts)
}

/// Spawns the background scrubber when [`PnwConfig::scrub_rate`] is set
/// (and integrity is on — there is nothing to verify without CRCs): a
/// thread that visits shards round-robin, scrubbing a small batch of
/// buckets per visit under that shard's engine lock, and sleeps between
/// visits so the steady-state rate stays at `rate` buckets per second
/// across the whole store. The sleep is chunked so a stop request is
/// honored within ~20 ms.
fn spawn_scrubber(
    cfg: &PnwConfig,
    shards: &Arc<Vec<Shard>>,
    stop: &Arc<AtomicBool>,
) -> Option<std::thread::JoinHandle<()>> {
    let rate = cfg.scrub_rate?.max(1);
    if !cfg.integrity {
        return None;
    }
    let shards = Arc::clone(shards);
    let stop = Arc::clone(stop);
    Some(std::thread::spawn(move || {
        let batch = rate.clamp(1, 64);
        let interval = Duration::from_secs_f64(f64::from(batch) / f64::from(rate));
        let mut next = 0usize;
        while !stop.load(Ordering::Acquire) {
            {
                let mut eng = shards[next].engine.lock().unwrap();
                let _ = eng.scrub_step(batch);
            }
            next = (next + 1) % shards.len();
            let mut remaining = interval;
            while remaining > Duration::ZERO && !stop.load(Ordering::Acquire) {
                let chunk = remaining.min(Duration::from_millis(20));
                std::thread::sleep(chunk);
                remaining = remaining.saturating_sub(chunk);
            }
        }
    }))
}

/// The per-shard view of the whole-store configuration: capacity and
/// reserve split as evenly as possible, one logical shard, always
/// volatile (file-backed shards get their device files through
/// [`ShardEngine::open_file`], not through the config).
fn shard_config(cfg: &PnwConfig, n: usize, i: usize) -> PnwConfig {
    let mut shard_cfg = cfg.clone();
    shard_cfg.capacity = split(cfg.capacity, n, i);
    shard_cfg.reserve_buckets = split(cfg.reserve_buckets, n, i);
    shard_cfg.shards = 1;
    shard_cfg.backing = BackingMode::Volatile;
    shard_cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedPnwStore>();
    }

    #[test]
    fn split_distributes_remainders() {
        let parts: Vec<usize> = (0..3).map(|i| split(10, 3, i)).collect();
        assert_eq!(parts, vec![4, 3, 3]);
        assert_eq!((0..4).map(|i| split(8, 4, i)).sum::<usize>(), 8);
        assert_eq!(split(0, 4, 0), 0);
    }

    #[test]
    fn basic_roundtrip_across_shards() {
        let s = ShardedPnwStore::new(PnwConfig::new(64, 8).with_clusters(2).with_shards(4));
        assert_eq!(s.shard_count(), 4);
        for k in 0..32u64 {
            s.put(k, &[k as u8; 8]).unwrap();
        }
        assert_eq!(s.len(), 32);
        for k in 0..32u64 {
            assert_eq!(s.get(k).unwrap().unwrap(), vec![k as u8; 8]);
        }
        assert!(s.delete(5).unwrap());
        assert!(!s.delete(5).unwrap());
        assert_eq!(s.get(5).unwrap(), None);
        assert_eq!(s.len(), 31);
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let s = ShardedPnwStore::new(PnwConfig::new(2, 8).with_shards(16));
        assert_eq!(s.shard_count(), 2);
    }

    #[test]
    fn wrong_value_size_rejected_before_routing() {
        let s = ShardedPnwStore::new(PnwConfig::new(16, 8).with_shards(2));
        assert!(matches!(
            s.put(1, &[0u8; 3]),
            Err(PnwError::WrongValueSize { expected: 8, got: 3 })
        ));
    }

    /// A GET must complete while another thread holds the shard's engine
    /// lock for writing — the proof that the steady-state read path takes
    /// zero locks. (A locked read here would deadlock: the engine mutex is
    /// held by the *same* thread for the duration of the closure.)
    #[test]
    fn get_takes_no_lock_while_writer_holds_the_shard() {
        for placement in [
            crate::IndexPlacement::Dram,
            crate::IndexPlacement::Nvm,
        ] {
            let s = ShardedPnwStore::new(
                PnwConfig::new(32, 8)
                    .with_clusters(1)
                    .with_shards(1)
                    .with_index(placement),
            );
            s.put(7, &[0xAB; 8]).unwrap();
            let got = s.with_shard_write_held(0, || s.get(7).unwrap());
            assert_eq!(got.unwrap(), vec![0xAB; 8], "{placement:?}");
            let miss = s.with_shard_write_held(0, || s.get(8).unwrap());
            assert_eq!(miss, None);
        }
    }

    /// With `locked_reads` the GET path goes through the engine mutex —
    /// same results, used as the before/after benchmark baseline.
    #[test]
    fn locked_reads_fallback_matches() {
        let s = ShardedPnwStore::new(
            PnwConfig::new(32, 8)
                .with_clusters(1)
                .with_shards(2)
                .with_locked_reads(true),
        );
        for k in 0..16u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        for k in 0..16u64 {
            assert_eq!(s.get(k).unwrap().unwrap(), k.to_le_bytes());
        }
        assert_eq!(s.get(99).unwrap(), None);
    }

    /// A saturated shard queue rejects with `Backpressure` instead of
    /// convoying on the engine lock; the queued op completes once the
    /// writer releases.
    #[test]
    fn queue_backpressure_rejects_when_full() {
        let s = Arc::new(ShardedPnwStore::new(
            PnwConfig::new(64, 8)
                .with_clusters(1)
                .with_shards(1)
                .with_shard_queue_depth(1),
        ));
        let handles = s.with_shard_write_held(0, || {
            let hs: Vec<_> = (0..2u64)
                .map(|t| {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || s.put(100 + t, &[t as u8; 8]))
                })
                .collect();
            // Let both writers hit the contended path: one queues (depth
            // 1), the other must observe the full queue.
            std::thread::sleep(Duration::from_millis(100));
            hs
        });
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let rejected = results
            .iter()
            .filter(|r| matches!(r, Err(StoreError::Backpressure { shard: 0, depth: 1 })))
            .count();
        let applied = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(
            (applied, rejected),
            (1, 1),
            "one op queues and lands, one backs off: {results:?}"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merged_stats_are_the_sum_of_shard_stats() {
        let s = ShardedPnwStore::new(PnwConfig::new(64, 8).with_clusters(2).with_shards(4));
        for k in 0..40u64 {
            s.put(k, &(k * 11).to_le_bytes()).unwrap();
        }
        for k in 0..10u64 {
            s.delete(k).unwrap();
        }
        let merged = s.device_stats();
        let manual = DeviceStats::merged(s.per_shard_device_stats().iter());
        assert_eq!(merged, manual);
        assert!(merged.totals.bit_flips > 0);
        // Bit-flip conservation: no shard's flips are lost or double
        // counted in the merge.
        let sum: u64 = s
            .per_shard_device_stats()
            .iter()
            .map(|d| d.totals.bit_flips)
            .sum();
        assert_eq!(merged.totals.bit_flips, sum);
    }

    #[test]
    fn retrain_relabels_every_shard() {
        let s = ShardedPnwStore::new(PnwConfig::new(64, 8).with_clusters(2).with_shards(2));
        for k in 0..32u64 {
            let v = if k % 2 == 0 { [0x00u8; 8] } else { [0xFFu8; 8] };
            s.put(k, &v).unwrap();
        }
        s.retrain_now().unwrap();
        assert!(s.is_trained());
        assert_eq!(s.retrains(), 1);
        let snap = s.snapshot();
        assert_eq!(snap.k, 2);
        assert_eq!(snap.live, 32);
    }

    #[test]
    fn background_retrain_swaps_on_finish() {
        let s = ShardedPnwStore::new(
            PnwConfig::new(64, 8)
                .with_clusters(2)
                .with_shards(2)
                .with_load_factor(0.25)
                .with_retrain(RetrainMode::Background),
        );
        for k in 0..48u64 {
            s.put(k, &(k * 7).to_le_bytes()).unwrap();
        }
        s.wait_for_retrain();
        assert!(s.is_trained());
        assert!(s.retrains() >= 1);
        // The store keeps serving after the swap.
        s.put(999, &[3u8; 8]).unwrap();
        assert_eq!(s.get(999).unwrap().unwrap(), vec![3u8; 8]);
    }

    #[test]
    fn background_retrain_does_not_block_zone_extension() {
        // Regression: extension must run on every due PUT even while a
        // background training run is pending — a shard with reserve left
        // must never report Full just because the maintenance flag is
        // held by an uninstalled retrain.
        let s = ShardedPnwStore::new(
            PnwConfig::new(32, 8)
                .with_clusters(2)
                .with_shards(1)
                .with_reserve(96)
                .with_load_factor(0.5)
                .with_retrain(RetrainMode::Background),
        );
        for k in 0..100u64 {
            s.put(k, &(k * 3).to_le_bytes())
                .expect("reserve must absorb every put");
        }
        assert!(s.snapshot().capacity > 32, "zone must have extended");
        s.wait_for_retrain();
        assert!(s.is_trained());
    }

    #[test]
    fn concurrent_puts_and_gets_smoke() {
        let s = Arc::new(ShardedPnwStore::new(
            PnwConfig::new(256, 8).with_clusters(2).with_shards(4),
        ));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let key = t * 1000 + i;
                    s.put(key, &key.to_le_bytes()).unwrap();
                    assert_eq!(s.get(key).unwrap().unwrap(), key.to_le_bytes().to_vec());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 200);
    }

    /// Batched apply on the sharded store must be semantically identical
    /// to issuing the same ops one by one — same final contents, same
    /// counters — while taking each shard lock once per batch.
    #[test]
    fn apply_equals_per_op_across_shards() {
        let cfg = PnwConfig::new(128, 8).with_clusters(2).with_shards(4);
        let batched = ShardedPnwStore::new(cfg.clone());
        let per_op = ShardedPnwStore::new(cfg);

        let mut batch = crate::Batch::new();
        for k in 0..48u64 {
            batch.put(k, &[(k % 7) as u8; 8]);
        }
        for k in (0..48u64).step_by(4) {
            batch.delete(k);
        }
        for k in 0..8u64 {
            batch.put(k, &[0xCC; 8]);
        }
        let r = batched.apply(&batch);
        assert!(r.all_ok());
        assert_eq!(r.puts, 56);
        assert_eq!(r.deleted_existing, 12);
        assert!(r.write_stats.bit_flips > 0);
        assert!(
            !r.predict_samples.is_empty(),
            "batched rows must carry sampled prediction latencies"
        );

        for op in batch.ops() {
            match op {
                crate::Op::Put { key, value } => {
                    per_op.put(*key, value).unwrap();
                }
                crate::Op::Delete { key } => {
                    per_op.delete(*key).unwrap();
                }
            }
        }
        assert_eq!(batched.len(), per_op.len());
        assert_eq!(batched.device_stats(), per_op.device_stats());
        for k in 0..48u64 {
            assert_eq!(batched.get(k).unwrap(), per_op.get(k).unwrap(), "key {k}");
        }
        let (sa, sb) = (batched.snapshot(), per_op.snapshot());
        assert_eq!(sa.puts, sb.puts);
        assert_eq!(sa.deletes, sb.deletes);
        assert_eq!(sa.free, sb.free);
    }

    #[test]
    fn apply_reports_failures_with_batch_indices() {
        let s = ShardedPnwStore::new(PnwConfig::new(4, 8).with_clusters(1).with_shards(2));
        let mut batch = crate::Batch::new();
        for k in 0..8u64 {
            batch.put(k, &[k as u8; 8]); // only 4 fit
        }
        batch.put(99, &[0; 3]); // wrong size, index 8
        let r = s.apply(&batch);
        assert_eq!(r.puts, 4);
        assert_eq!(r.failures.len(), 5);
        // Failure indices are sorted by batch position despite shard
        // grouping, and the wrong-size op is reported as such.
        assert!(r.failures.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(matches!(
            r.failures.last().unwrap(),
            (8, PnwError::WrongValueSize { .. })
        ));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn concurrent_batches_and_reads_smoke() {
        let s = Arc::new(ShardedPnwStore::new(
            PnwConfig::new(512, 8).with_clusters(2).with_shards(4),
        ));
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut batch = crate::Batch::with_capacity(16);
                for round in 0..4u64 {
                    batch.clear();
                    for i in 0..16u64 {
                        let key = t * 1000 + round * 16 + i;
                        batch.put(key, &key.to_le_bytes());
                    }
                    let r = s.apply(&batch);
                    assert!(r.all_ok(), "{:?}", r.failures);
                    for i in 0..16u64 {
                        let key = t * 1000 + round * 16 + i;
                        assert_eq!(s.get(key).unwrap().unwrap(), key.to_le_bytes());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 3 * 64);
    }

    #[test]
    fn durable_sharded_store_round_trips_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pnw_sharded_{}_rt", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = PnwConfig::new(64, 8)
            .with_clusters(2)
            .with_shards(4)
            .with_seed(7);
        {
            let s = ShardedPnwStore::open(cfg.clone().with_path(&dir)).unwrap();
            assert!(s.is_durable());
            assert_eq!(s.shard_count(), 4);
            for k in 0..32u64 {
                s.put(k, &(k * 5).to_le_bytes()).unwrap();
            }
            assert!(s.delete(7).unwrap());
            s.close().unwrap();
        }
        let s = ShardedPnwStore::open(cfg.with_path(&dir)).unwrap();
        assert_eq!(s.len(), 31);
        assert_eq!(s.get(7).unwrap(), None);
        for k in (0..32u64).filter(|&k| k != 7) {
            assert_eq!(s.get(k).unwrap().unwrap(), (k * 5).to_le_bytes());
        }
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_wear_cdf_covers_all_shards() {
        let s = ShardedPnwStore::new(PnwConfig::new(32, 8).with_clusters(1).with_shards(4));
        for k in 0..24u64 {
            s.put(k, &(!k).to_le_bytes()).unwrap();
        }
        let cdf = s.word_wear_cdf();
        // Population = every data-zone word of every shard: 32 buckets ×
        // 3 words (16 B header + 8 B value).
        assert_eq!(cdf.population, 32 * 3);
        assert!(cdf.max() >= 1);
    }
}
