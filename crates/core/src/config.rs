//! Store configuration.

use serde::{Deserialize, Serialize};

/// Where the hash index lives (§V-A.3, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexPlacement {
    /// Figure 2a: DRAM index — zero NVM bit flips, rebuilt on recovery.
    /// The right choice for small keys.
    Dram,
    /// Figure 2b: Path-hashing index persisted in NVM — survives crashes,
    /// but its write amplification costs NVM bit flips. The paper's
    /// worst-case evaluation setting.
    Nvm,
}

/// Where a store's state lives between processes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackingMode {
    /// DRAM-emulated only (the paper's evaluation setting): nothing
    /// survives the process. Stores are built with `new`.
    #[default]
    Volatile,
    /// Durable: the directory holds write-through device images plus the
    /// superblock / WAL / checkpoint metadata files. Stores are built with
    /// `open`, which replays the WAL over the last checkpoint and rebuilds
    /// the DRAM-side structures.
    File(std::path::PathBuf),
}

/// How UPDATE operations are executed (§V-B.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdatePolicy {
    /// Endurance-first (the paper's default): DELETE then PUT, so the new
    /// version lands on the most bit-similar free location.
    DeletePut,
    /// Latency-first: update in place through the hash index, sacrificing
    /// wear for one less indirection.
    InPlace,
}

/// When the model is retrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrainMode {
    /// Only when [`PnwStore::retrain_now`](crate::PnwStore::retrain_now) is
    /// called.
    Manual,
    /// Synchronously when pool availability drops below the load factor.
    OnLoadFactor,
    /// A background thread retrains when availability drops below the load
    /// factor; the store keeps serving from the old model and swaps when
    /// training finishes (§V-C's "hide the re-training latency").
    Background,
}

/// Dimensionality-reduction policy (§V-A.1, "curse of dimensionality").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcaPolicy {
    /// Apply PCA when a value's bit count exceeds this threshold. The paper:
    /// *"small (e.g. 64 bit) data elements can be directly passed to the
    /// model, while for large data element (e.g. 4KB) we first apply
    /// dimensionality reduction using PCA"*.
    pub threshold_bits: usize,
    /// Components to project onto.
    pub components: usize,
    /// Sample size for fitting the PCA basis (the Gram-trick eigensolve is
    /// cubic in this).
    pub sample: usize,
}

impl Default for PcaPolicy {
    fn default() -> Self {
        PcaPolicy {
            threshold_bits: 1024,
            components: 32,
            sample: 256,
        }
    }
}

/// Why a [`PnwConfig`] was rejected by [`PnwConfig::build`].
///
/// The builder methods clamp their inputs, but the fields are public and a
/// hand-assembled config used to fail only deep inside store construction
/// (an allocator assert, a division by zero in the pool). `build` rejects
/// those configs at the boundary with a named reason instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `capacity == 0`: a store needs at least one data-zone bucket.
    ZeroCapacity,
    /// `value_size == 0`: buckets must hold at least one byte.
    ZeroValueSize,
    /// `clusters > capacity`: K-means cannot place more cluster free lists
    /// than there are buckets to label.
    ClustersExceedCapacity {
        /// Configured cluster count K.
        clusters: usize,
        /// Configured bucket count.
        capacity: usize,
    },
    /// `shards == 0`: the sharded store needs at least one shard.
    ZeroShards,
    /// `load_factor` outside `(0, 1]`; carries the offending value.
    BadLoadFactor(f64),
    /// `retention_ring` without `ttl_enabled`: ring eviction orders
    /// entries by expiry deadline, which only exists with TTL on. The
    /// builder ([`PnwConfig::with_ring_retention`]) sets both; this
    /// rejects hand-assembled configs that set the ring flag alone.
    RingWithoutTtl,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCapacity => write!(f, "capacity must be at least 1 bucket"),
            ConfigError::ZeroValueSize => write!(f, "value_size must be at least 1 byte"),
            ConfigError::ClustersExceedCapacity { clusters, capacity } => {
                write!(f, "clusters ({clusters}) must not exceed capacity ({capacity})")
            }
            ConfigError::ZeroShards => write!(f, "shards must be at least 1"),
            ConfigError::BadLoadFactor(lf) => {
                write!(f, "load_factor {lf} must lie in (0, 1]")
            }
            ConfigError::RingWithoutTtl => {
                write!(f, "retention_ring requires ttl_enabled")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a [`PnwStore`](crate::PnwStore).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PnwConfig {
    /// Number of data-zone buckets.
    pub capacity: usize,
    /// Value size in bytes (the paper supports 32-bit words up to documents;
    /// one store instance uses one size).
    pub value_size: usize,
    /// Number of clusters K.
    pub clusters: usize,
    /// RNG seed for training.
    pub seed: u64,
    /// Load factor: when more than this fraction of buckets is occupied
    /// (equivalently, pool availability falls below `1 - load_factor`),
    /// retraining is due (§V-C).
    pub load_factor: f64,
    /// Index placement.
    pub index: IndexPlacement,
    /// UPDATE policy.
    pub update_policy: UpdatePolicy,
    /// Retrain trigger.
    pub retrain: RetrainMode,
    /// PCA policy for large values.
    pub pca: PcaPolicy,
    /// Worker threads for K-means training (Figure 11 sweeps 1 vs 4).
    pub train_threads: usize,
    /// Cap on how many data-zone values a training *snapshot* collects
    /// (buckets are stride-subsampled beyond this, per shard).
    pub train_sample: usize,
    /// Hard cap on the samples one training run consumes: snapshots larger
    /// than this are reduced by deterministic reservoir sampling
    /// ([`reservoir_sample`](crate::model::reservoir_sample)) before
    /// featurization, so retrain cost stops scaling with data-zone size.
    /// [`StoreSnapshot::train`](crate::StoreSnapshot::train) reports the
    /// pre- and post-cap counts.
    pub train_sample_cap: usize,
    /// Lloyd iteration cap.
    pub train_iters: usize,
    /// Track per-bit wear (needed for Figure 13; costs DRAM).
    pub track_bit_wear: bool,
    /// Reserved buckets beyond `capacity`, pre-allocated on the device but
    /// inactive until [`PnwStore::extend_zone`](crate::PnwStore::extend_zone)
    /// activates them — the §V-C data-zone extension path (*"when x percent
    /// of the available addresses in the K/V data zone are used, the K/V
    /// data zone needs to be extended"*). When the load factor trips and
    /// reserve is available, the store extends automatically before
    /// retraining.
    pub reserve_buckets: usize,
    /// When set, retraining chooses K automatically with the elbow method
    /// (§V-A.1, Figure 4) by sweeping this inclusive range of cluster
    /// counts on a training subsample. `clusters` is then only the initial
    /// placeholder.
    pub auto_k: Option<(usize, usize)>,
    /// Shard count for [`ShardedPnwStore`](crate::ShardedPnwStore): the
    /// data zone is split into this many independent slices, each with its
    /// own device region, index and address pool, routed by key hash. `1`
    /// (the default) reproduces the single-threaded
    /// [`PnwStore`](crate::PnwStore) behavior bit-for-bit. Ignored by
    /// `PnwStore` itself.
    pub shards: usize,
    /// Where the store's state lives between processes:
    /// [`BackingMode::Volatile`] (default) for the in-process emulated
    /// device, [`BackingMode::File`] for a durable directory opened with
    /// [`PnwStore::open`](crate::PnwStore::open) /
    /// [`ShardedPnwStore::open`](crate::ShardedPnwStore::open).
    pub backing: BackingMode,
    /// Capacity of each shard's bounded write queue in the sharded
    /// store's single-writer path. A writer that finds the shard's engine
    /// busy enqueues its operation; when the queue is full the operation
    /// fails with [`StoreError::Backpressure`](crate::StoreError) instead
    /// of convoying on a lock. Does not affect geometry or placement.
    pub shard_queue_depth: usize,
    /// Forces [`ShardedPnwStore`](crate::ShardedPnwStore) GETs through
    /// the shard engine lock instead of the lock-free seqlock-validated
    /// read view — the before/after comparison knob for the read-path
    /// benchmarks. Defaults to `false` (lock-free reads). Does not affect
    /// stored bytes or placement.
    pub locked_reads: bool,
    /// End-to-end data integrity (default `true`): every PUT seals a
    /// CRC-32 of `key ‖ value` into the bucket header and read-verifies
    /// the bucket before acknowledging (DCW-style write-verify — a PUT
    /// that lands on stuck media is transparently re-placed onto the next
    /// free bucket and the damaged one retired); every GET re-computes the
    /// CRC and returns [`StoreError::Corruption`](crate::StoreError)
    /// instead of corrupt bytes. Turning this off removes the CRC seal,
    /// the GET verify and the write-verify — the benchmark comparison
    /// knob for measuring integrity overhead.
    pub integrity: bool,
    /// Media endurance in writes per word. When set, each device word
    /// that exceeds this write count may latch a stuck-at bit (the
    /// wear-out fault model of the NVM layer); the placement pool also
    /// deprioritizes buckets whose hottest word has passed 3/4 of this
    /// budget, steering new data toward fresher cells. `None` (default):
    /// no wear-out faults, no deprioritization.
    pub endurance_writes: Option<u32>,
    /// Probability that a past-endurance write latches a stuck bit
    /// (default `1.0` — deterministic wear-out, the testing setting).
    /// Only meaningful with `endurance_writes` set.
    pub stuck_latch_probability: f64,
    /// Background scrub rate in buckets per second for
    /// [`ShardedPnwStore`](crate::ShardedPnwStore). When set, a
    /// low-priority thread walks the shards bucket-by-bucket through the
    /// lock-free read view, verifies each sealed CRC, repairs corrupt
    /// buckets from the durable layer when a clean copy exists and
    /// retires buckets sitting on stuck media. `None` (default): no
    /// background thread; explicit
    /// [`scrub_pass`](crate::ShardedPnwStore::scrub_pass) calls still
    /// work.
    pub scrub_rate: Option<u32>,
    /// Per-key TTL/expiry support (default `false`). When on, the store
    /// allocates an expiry zone alongside the data zone (8 bytes per
    /// bucket holding an absolute unix-millisecond deadline; 0 = never
    /// expires), `put_with_expiry` stamps deadlines, GETs treat expired
    /// keys as absent (lazy expiry, no mutation on the read path) and the
    /// scrubber cursor physically reclaims expired buckets as it passes
    /// them. Expiry stamps ride the same write-through device image as
    /// the data zone, so deadlines survive crash/reopen.
    pub ttl_enabled: bool,
    /// Ring-buffer retention for streaming workloads (default `false`;
    /// implies `ttl_enabled`). When a PUT finds the data zone full, the
    /// store first reclaims expired buckets and, if none exist, evicts
    /// the live entry with the *earliest* expiry deadline — oldest data
    /// falls off the ring, exactly the CCTV-recorder retention model —
    /// before failing with `Full`. Entries without a deadline are never
    /// evicted.
    pub retention_ring: bool,
}

impl PnwConfig {
    /// A config with the paper's defaults for the given geometry.
    pub fn new(capacity: usize, value_size: usize) -> Self {
        PnwConfig {
            capacity,
            value_size,
            // The paper's default K, never exceeding the bucket count (a
            // tiny store cannot meaningfully hold 10 cluster free lists).
            clusters: 10.min(capacity.max(1)),
            seed: 0x0050_4E57, // "PNW"
            load_factor: 0.9,
            index: IndexPlacement::Dram,
            update_policy: UpdatePolicy::DeletePut,
            retrain: RetrainMode::Manual,
            pca: PcaPolicy::default(),
            train_threads: 1,
            train_sample: 4096,
            train_sample_cap: 4096,
            train_iters: 25,
            track_bit_wear: false,
            reserve_buckets: 0,
            auto_k: None,
            shards: 1,
            backing: BackingMode::Volatile,
            shard_queue_depth: 1024,
            locked_reads: false,
            integrity: true,
            endurance_writes: None,
            stuck_latch_probability: 1.0,
            scrub_rate: None,
            ttl_enabled: false,
            retention_ring: false,
        }
    }

    /// Sets K.
    pub fn with_clusters(mut self, k: usize) -> Self {
        self.clusters = k.max(1);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets index placement.
    pub fn with_index(mut self, p: IndexPlacement) -> Self {
        self.index = p;
        self
    }

    /// Sets the update policy.
    pub fn with_update_policy(mut self, p: UpdatePolicy) -> Self {
        self.update_policy = p;
        self
    }

    /// Sets the retrain mode.
    pub fn with_retrain(mut self, r: RetrainMode) -> Self {
        self.retrain = r;
        self
    }

    /// Sets the load factor (clamped to `(0, 1]`).
    pub fn with_load_factor(mut self, lf: f64) -> Self {
        self.load_factor = lf.clamp(f64::EPSILON, 1.0);
        self
    }

    /// Sets training threads.
    pub fn with_train_threads(mut self, t: usize) -> Self {
        self.train_threads = t.max(1);
        self
    }

    /// Sets the reservoir cap on per-run training samples (clamped to ≥ 1).
    pub fn with_train_sample_cap(mut self, cap: usize) -> Self {
        self.train_sample_cap = cap.max(1);
        self
    }

    /// Enables per-bit wear tracking.
    pub fn with_bit_wear(mut self, on: bool) -> Self {
        self.track_bit_wear = on;
        self
    }

    /// Sets the PCA policy.
    pub fn with_pca(mut self, pca: PcaPolicy) -> Self {
        self.pca = pca;
        self
    }

    /// Reserves extra buckets for later zone extension.
    pub fn with_reserve(mut self, buckets: usize) -> Self {
        self.reserve_buckets = buckets;
        self
    }

    /// Enables elbow-method K selection over `[min, max]`.
    pub fn with_auto_k(mut self, min: usize, max: usize) -> Self {
        self.auto_k = Some((min.max(1), max.max(min.max(1))));
        self
    }

    /// Sets the shard count for
    /// [`ShardedPnwStore`](crate::ShardedPnwStore) (clamped to ≥ 1).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Sets the per-shard write-queue depth (clamped to ≥ 1).
    pub fn with_shard_queue_depth(mut self, depth: usize) -> Self {
        self.shard_queue_depth = depth.max(1);
        self
    }

    /// Routes sharded-store GETs through the shard lock instead of the
    /// lock-free read view (benchmark comparison knob).
    pub fn with_locked_reads(mut self, locked: bool) -> Self {
        self.locked_reads = locked;
        self
    }

    /// Enables or disables end-to-end integrity (CRC seal + GET verify +
    /// PUT write-verify). On by default; turn off only for overhead
    /// benchmarks.
    pub fn with_integrity(mut self, on: bool) -> Self {
        self.integrity = on;
        self
    }

    /// Sets the media endurance budget in writes per word (clamped to
    /// ≥ 1), arming the device's stuck-at wear-out model and the pool's
    /// wear deprioritization.
    pub fn with_endurance(mut self, writes: u32) -> Self {
        self.endurance_writes = Some(writes.max(1));
        self
    }

    /// Sets the probability that a past-endurance write latches a stuck
    /// bit (clamped to `[0, 1]`).
    pub fn with_stuck_latch_probability(mut self, p: f64) -> Self {
        self.stuck_latch_probability = if p.is_nan() { 1.0 } else { p.clamp(0.0, 1.0) };
        self
    }

    /// Enables the background scrubber at `buckets_per_sec` (clamped to
    /// ≥ 1) on [`ShardedPnwStore`](crate::ShardedPnwStore).
    pub fn with_scrub(mut self, buckets_per_sec: u32) -> Self {
        self.scrub_rate = Some(buckets_per_sec.max(1));
        self
    }

    /// Enables per-key TTL/expiry (allocates the expiry zone).
    pub fn with_ttl(mut self) -> Self {
        self.ttl_enabled = true;
        self
    }

    /// Enables ring-buffer retention (implies TTL): a full data zone
    /// evicts the entry with the earliest expiry deadline instead of
    /// failing the PUT.
    pub fn with_ring_retention(mut self) -> Self {
        self.ttl_enabled = true;
        self.retention_ring = true;
        self
    }

    /// Makes the store durable at `path` (a directory; created on first
    /// open). Build the store with `open` instead of `new` afterwards.
    pub fn with_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.backing = BackingMode::File(path.into());
        self
    }

    /// Whether values of this size go through PCA.
    pub fn uses_pca(&self) -> bool {
        self.value_size * 8 > self.pca.threshold_bits
    }

    /// Checks the invariants every store frontend relies on. The builder
    /// methods clamp their inputs, but all fields are public — this is the
    /// boundary check for hand-assembled configs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.capacity == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        if self.value_size == 0 {
            return Err(ConfigError::ZeroValueSize);
        }
        if self.clusters > self.capacity {
            return Err(ConfigError::ClustersExceedCapacity {
                clusters: self.clusters,
                capacity: self.capacity,
            });
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if !(self.load_factor > 0.0 && self.load_factor <= 1.0) {
            return Err(ConfigError::BadLoadFactor(self.load_factor));
        }
        if self.retention_ring && !self.ttl_enabled {
            return Err(ConfigError::RingWithoutTtl);
        }
        Ok(())
    }

    /// Validates and returns the finished configuration — the fallible end
    /// of the builder chain. Store constructors run the same
    /// [`PnwConfig::validate`] check, so an invalid config is rejected at
    /// the API boundary with a named [`ConfigError`] instead of panicking
    /// deep inside store construction.
    ///
    /// ```
    /// use pnw_core::{ConfigError, PnwConfig};
    ///
    /// let cfg = PnwConfig::new(256, 8).with_clusters(4).build().unwrap();
    /// assert_eq!(cfg.capacity, 256);
    ///
    /// let mut bad = PnwConfig::new(8, 8);
    /// bad.clusters = 99; // direct field access skips the clamping builder
    /// assert_eq!(
    ///     bad.build().unwrap_err(),
    ///     ConfigError::ClustersExceedCapacity { clusters: 99, capacity: 8 }
    /// );
    /// ```
    pub fn build(self) -> Result<Self, ConfigError> {
        self.validate()?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PnwConfig::new(1000, 64);
        assert_eq!(c.capacity, 1000);
        assert_eq!(c.value_size, 64);
        assert!(c.clusters >= 1);
        assert!((0.0..=1.0).contains(&c.load_factor));
        assert_eq!(c.index, IndexPlacement::Dram);
        assert_eq!(c.update_policy, UpdatePolicy::DeletePut);
    }

    #[test]
    fn pca_threshold() {
        assert!(!PnwConfig::new(10, 4).uses_pca()); // 32 bits
        assert!(PnwConfig::new(10, 784).uses_pca()); // 6272 bits
    }

    #[test]
    fn builder_clamps() {
        let c = PnwConfig::new(1, 1)
            .with_clusters(0)
            .with_load_factor(7.0)
            .with_train_threads(0)
            .with_train_sample_cap(0)
            .with_shards(0);
        assert_eq!(c.clusters, 1);
        assert_eq!(c.load_factor, 1.0);
        assert_eq!(c.train_threads, 1);
        assert_eq!(c.train_sample_cap, 1);
        assert_eq!(c.shards, 1);
        assert_eq!(PnwConfig::new(8, 8).with_shards(4).shards, 4);
        assert_eq!(PnwConfig::new(8, 8).with_shard_queue_depth(0).shard_queue_depth, 1);
        assert_eq!(PnwConfig::new(8, 8).with_shard_queue_depth(64).shard_queue_depth, 64);
        assert!(PnwConfig::new(8, 8).with_locked_reads(true).locked_reads);
        assert!(!PnwConfig::new(8, 8).locked_reads);
        assert_eq!(PnwConfig::new(8, 8).with_train_sample_cap(99).train_sample_cap, 99);
        assert_eq!(PnwConfig::new(8, 8).with_endurance(0).endurance_writes, Some(1));
        assert_eq!(PnwConfig::new(8, 8).with_scrub(0).scrub_rate, Some(1));
        let c = PnwConfig::new(8, 8).with_stuck_latch_probability(7.0);
        assert_eq!(c.stuck_latch_probability, 1.0);
        let c = PnwConfig::new(8, 8).with_stuck_latch_probability(f64::NAN);
        assert_eq!(c.stuck_latch_probability, 1.0);
    }

    #[test]
    fn integrity_defaults_on_and_wearout_defaults_off() {
        let c = PnwConfig::new(64, 8);
        assert!(c.integrity, "integrity must be the default — corruption detection is not opt-in");
        assert_eq!(c.endurance_writes, None);
        assert_eq!(c.scrub_rate, None);
        assert!(!PnwConfig::new(64, 8).with_integrity(false).integrity);
        assert_eq!(PnwConfig::new(64, 8).with_endurance(500).endurance_writes, Some(500));
        assert_eq!(PnwConfig::new(64, 8).with_scrub(4096).scrub_rate, Some(4096));
    }

    #[test]
    fn build_accepts_sane_configs() {
        assert!(PnwConfig::new(64, 8).with_clusters(4).build().is_ok());
        assert!(PnwConfig::new(1, 1).build().is_ok());
    }

    #[test]
    fn ttl_and_ring_builders() {
        let c = PnwConfig::new(64, 8);
        assert!(!c.ttl_enabled && !c.retention_ring, "TTL must be opt-in");
        let c = PnwConfig::new(64, 8).with_ttl();
        assert!(c.ttl_enabled && !c.retention_ring);
        let c = PnwConfig::new(64, 8).with_ring_retention();
        assert!(c.ttl_enabled && c.retention_ring, "ring implies ttl");
        assert!(c.build().is_ok());
    }

    #[test]
    fn build_rejects_each_invalid_field() {
        assert_eq!(
            PnwConfig::new(0, 8).build().unwrap_err(),
            ConfigError::ZeroCapacity
        );
        assert_eq!(
            PnwConfig::new(8, 0).build().unwrap_err(),
            ConfigError::ZeroValueSize
        );
        let mut c = PnwConfig::new(4, 8);
        c.clusters = 5;
        assert_eq!(
            c.build().unwrap_err(),
            ConfigError::ClustersExceedCapacity {
                clusters: 5,
                capacity: 4
            }
        );
        let mut c = PnwConfig::new(8, 8);
        c.shards = 0;
        assert_eq!(c.build().unwrap_err(), ConfigError::ZeroShards);
        let mut c = PnwConfig::new(8, 8);
        c.retention_ring = true; // skipped the builder, so ttl stayed off
        assert_eq!(c.build().unwrap_err(), ConfigError::RingWithoutTtl);
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let mut c = PnwConfig::new(8, 8);
            c.load_factor = bad;
            assert!(
                matches!(c.build(), Err(ConfigError::BadLoadFactor(_))),
                "load_factor {bad} must be rejected"
            );
        }
    }

    #[test]
    fn config_error_displays_the_reason() {
        let e = ConfigError::ClustersExceedCapacity {
            clusters: 9,
            capacity: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        assert!(ConfigError::BadLoadFactor(2.0).to_string().contains("(0, 1]"));
    }

    #[test]
    fn serde_roundtrip() {
        let c = PnwConfig::new(100, 8).with_clusters(5);
        let s = serde_json_like(&c);
        assert!(s.contains("capacity"));
    }

    /// serde is in the allowed dependency list but no JSON crate is; this
    /// just exercises the Serialize derive through the debug formatter.
    fn serde_json_like(c: &PnwConfig) -> String {
        format!("{c:?}")
    }
}
