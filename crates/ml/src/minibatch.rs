//! Mini-batch K-means (Sculley, 2010) — the cheap background-retraining
//! variant.
//!
//! §V-C of the paper requires retraining to happen *"in the background while
//! the system is running"* without starving request threads. Full Lloyd
//! passes over the data zone can take seconds (Figure 11); mini-batch
//! updates touch only a sampled batch per step and converge to nearly the
//! same centroids. The PNW store uses this as an opt-in retraining policy;
//! the `ablation_minibatch` bench quantifies the trade-off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kmeans::{KMeans, KMeansConfig};
use crate::matrix::Matrix;

/// Mini-batch K-means trainer.
#[derive(Debug, Clone)]
pub struct MiniBatchKMeans {
    /// Number of clusters.
    pub k: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Number of batch steps.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MiniBatchKMeans {
    /// A trainer with scikit-learn-like defaults (batch 256).
    pub fn new(k: usize) -> Self {
        MiniBatchKMeans {
            k,
            batch_size: 256,
            steps: 100,
            seed: 0xBEEF,
        }
    }

    /// Sets the batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b.max(1);
        self
    }

    /// Sets the number of steps.
    pub fn with_steps(mut self, s: usize) -> Self {
        self.steps = s.max(1);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains on `data`, optionally warm-starting from an existing model's
    /// centroids (the common case when refreshing PNW's model on a drifted
    /// workload).
    pub fn fit(&self, data: &Matrix, warm_start: Option<&KMeans>) -> KMeans {
        let n = data.rows();
        if n == 0 {
            return KMeans::fit(data, &KMeansConfig::new(self.k));
        }
        let k = self.k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initialize centroids: warm start (if compatible) or a small
        // k-means++ fit on one batch.
        let mut centroids = match warm_start {
            Some(m) if m.k() == k && m.dims() == data.cols() => m.centroids().clone(),
            _ => {
                let batch = self.sample(n, &mut rng);
                let sub = data.select_rows(&batch);
                KMeans::fit(&sub, &KMeansConfig::new(k).with_seed(self.seed))
                    .centroids()
                    .clone()
            }
        };

        let mut counts = vec![1u64; k];
        for _ in 0..self.steps {
            let batch = self.sample(n, &mut rng);
            for &i in &batch {
                let row = data.row(i);
                // Nearest centroid.
                let mut best = (0usize, f32::INFINITY);
                for c in 0..k {
                    let dct = crate::matrix::sq_dist(centroids.row(c), row);
                    if dct < best.1 {
                        best = (c, dct);
                    }
                }
                let c = best.0;
                counts[c] += 1;
                let eta = 1.0 / counts[c] as f32;
                for (ctr, &x) in centroids.row_mut(c).iter_mut().zip(row) {
                    *ctr += eta * (x - *ctr);
                }
            }
        }

        // Wrap the streamed centroids in a model and compute the final
        // inertia over the full data for comparability with Lloyd fits.
        let mut model = KMeans::from_centroids(centroids, self.steps);
        model.inertia = model.sse(data);
        model
    }

    fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<usize> {
        (0..self.batch_size.min(n))
            .map(|_| rng.gen_range(0..n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize) -> Matrix {
        let centers = [(0.0f32, 0.0f32), (20.0, 20.0)];
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..n_per {
                rows.push(vec![cx + rng.gen::<f32>(), cy + rng.gen::<f32>()]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn converges_near_full_kmeans() {
        let data = blobs(200);
        let full = KMeans::fit(&data, &KMeansConfig::new(2).with_seed(3));
        let mb = MiniBatchKMeans::new(2)
            .with_batch_size(64)
            .with_steps(50)
            .with_seed(3)
            .fit(&data, None);
        // Mini-batch inertia within 2x of the full fit on easy data.
        assert!(mb.inertia <= full.inertia * 2.0 + 1.0);
        // Labels separate the blobs.
        let labels = mb.labels(&data);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[399]);
    }

    #[test]
    fn warm_start_keeps_k() {
        let data = blobs(100);
        let full = KMeans::fit(&data, &KMeansConfig::new(2).with_seed(1));
        let mb = MiniBatchKMeans::new(2)
            .with_steps(10)
            .fit(&data, Some(&full));
        assert_eq!(mb.k(), 2);
        assert!(mb.inertia.is_finite());
    }

    #[test]
    fn empty_data_is_safe() {
        let m = MiniBatchKMeans::new(3).fit(&Matrix::zeros(0, 2), None);
        assert_eq!(m.predict(&[0.0, 0.0]), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(50);
        let a = MiniBatchKMeans::new(2).with_seed(8).fit(&data, None);
        let b = MiniBatchKMeans::new(2).with_seed(8).fit(&data, None);
        assert_eq!(a.centroids(), b.centroids());
    }
}
