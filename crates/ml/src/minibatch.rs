//! Mini-batch K-means (Sculley, 2010) — the cheap background-retraining
//! variant.
//!
//! §V-C of the paper requires retraining to happen *"in the background while
//! the system is running"* without starving request threads. Full Lloyd
//! passes over the data zone can take seconds (Figure 11); mini-batch
//! updates touch only a sampled batch per step and converge to nearly the
//! same centroids. The PNW store uses this as an opt-in retraining policy;
//! the `ablation_minibatch` bench quantifies the trade-off.
//!
//! Each step follows Sculley's two-phase form: the whole batch is assigned
//! against the step-start centroids first (*"cache the center nearest to
//! x"*), then the per-sample learning-rate updates are applied. The phase
//! split is what lets the packed bit-domain path build its byte LUTs once
//! per step and amortize them over the batch, exactly as the full-Lloyd
//! kernel amortizes them over the data set; training is generic over
//! [`TrainSet`] like [`KMeans::fit_set`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kmeans::{KMeans, KMeansConfig, TrainSet};
use crate::matrix::Matrix;

/// Mini-batch K-means trainer.
#[derive(Debug, Clone)]
pub struct MiniBatchKMeans {
    /// Number of clusters.
    pub k: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Number of batch steps.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MiniBatchKMeans {
    /// A trainer with scikit-learn-like defaults (batch 256).
    pub fn new(k: usize) -> Self {
        MiniBatchKMeans {
            k,
            batch_size: 256,
            steps: 100,
            seed: 0xBEEF,
        }
    }

    /// Sets the batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b.max(1);
        self
    }

    /// Sets the number of steps.
    pub fn with_steps(mut self, s: usize) -> Self {
        self.steps = s.max(1);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains on `data`, optionally warm-starting from an existing model's
    /// centroids (the common case when refreshing PNW's model on a drifted
    /// workload).
    pub fn fit(&self, data: &Matrix, warm_start: Option<&KMeans>) -> KMeans {
        self.fit_set(data, warm_start)
    }

    /// [`MiniBatchKMeans::fit`] over any [`TrainSet`] representation — the
    /// packed bit matrix streams its batches here without float expansion.
    pub fn fit_set<D: TrainSet>(&self, data: &D, warm_start: Option<&KMeans>) -> KMeans {
        let n = data.n_samples();
        let d = data.n_dims();
        if n == 0 {
            return KMeans::fit_set(data, &KMeansConfig::new(self.k));
        }
        let k = self.k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initialize centroids: warm start (if compatible) or a small
        // k-means++ fit on one batch.
        let mut centroids = match warm_start {
            Some(m) if m.k() == k && m.dims() == d => m.centroids().clone(),
            _ => {
                let batch = self.sample(n, &mut rng);
                let sub = data.select(&batch);
                KMeans::fit_set(&sub, &KMeansConfig::new(k).with_seed(self.seed))
                    .centroids()
                    .clone()
            }
        };

        let mut counts = vec![1u64; k];
        let mut labels = vec![0usize; self.batch_size.min(n)];
        let mut row = vec![0.0f32; d];
        for _ in 0..self.steps {
            let batch = self.sample(n, &mut rng);
            // Phase 1 (Sculley's assignment cache): label the whole batch
            // against the step-start centroids. The packed path builds its
            // byte LUTs once here and amortizes them over the batch.
            data.label_subset(&centroids, &batch, &mut labels[..batch.len()]);
            // Phase 2: per-sample learning-rate updates.
            for (&i, &c) in batch.iter().zip(&labels) {
                counts[c] += 1;
                let eta = 1.0 / counts[c] as f32;
                data.write_row(i, &mut row);
                for (ctr, &x) in centroids.row_mut(c).iter_mut().zip(&row) {
                    *ctr += eta * (x - *ctr);
                }
            }
        }

        // Wrap the streamed centroids in a model and compute the final
        // inertia over the full data for comparability with Lloyd fits.
        let mut model = KMeans::from_centroids(centroids, self.steps);
        let mut all_labels = vec![0usize; n];
        model.inertia = data.assign(model.centroids(), 1, &mut all_labels).sse;
        model
    }

    fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<usize> {
        (0..self.batch_size.min(n))
            .map(|_| rng.gen_range(0..n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize) -> Matrix {
        let centers = [(0.0f32, 0.0f32), (20.0, 20.0)];
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..n_per {
                rows.push(vec![cx + rng.gen::<f32>(), cy + rng.gen::<f32>()]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn converges_near_full_kmeans() {
        let data = blobs(200);
        let full = KMeans::fit(&data, &KMeansConfig::new(2).with_seed(3));
        let mb = MiniBatchKMeans::new(2)
            .with_batch_size(64)
            .with_steps(50)
            .with_seed(3)
            .fit(&data, None);
        // Mini-batch inertia within 2x of the full fit on easy data.
        assert!(mb.inertia <= full.inertia * 2.0 + 1.0);
        // Labels separate the blobs.
        let labels = mb.labels(&data);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[399]);
    }

    #[test]
    fn warm_start_keeps_k() {
        let data = blobs(100);
        let full = KMeans::fit(&data, &KMeansConfig::new(2).with_seed(1));
        let mb = MiniBatchKMeans::new(2)
            .with_steps(10)
            .fit(&data, Some(&full));
        assert_eq!(mb.k(), 2);
        assert!(mb.inertia.is_finite());
    }

    #[test]
    fn empty_data_is_safe() {
        let m = MiniBatchKMeans::new(3).fit(&Matrix::zeros(0, 2), None);
        assert_eq!(m.predict(&[0.0, 0.0]), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(50);
        let a = MiniBatchKMeans::new(2).with_seed(8).fit(&data, None);
        let b = MiniBatchKMeans::new(2).with_seed(8).fit(&data, None);
        assert_eq!(a.centroids(), b.centroids());
    }

    mod packed_equivalence {
        use super::*;
        use crate::featurize::featurize_values;
        use crate::packedmatrix::{family_test_values as family_values, PackedMatrix};

        fn assert_close(a: &KMeans, b: &KMeans) {
            assert_eq!(a.k(), b.k());
            for c in 0..a.k() {
                for (x, y) in a.centroid(c).iter().zip(b.centroid(c)) {
                    assert!((x - y).abs() <= 1e-4, "centroid {c}: {x} vs {y}");
                }
            }
        }

        #[test]
        fn cold_start_matches_float_path() {
            let values = family_values(300, 8, 3, 4);
            let trainer = MiniBatchKMeans::new(3)
                .with_batch_size(64)
                .with_steps(30)
                .with_seed(4);
            let packed = trainer.fit_set(&PackedMatrix::from_values(&values), None);
            let float = trainer.fit(&featurize_values(&values), None);
            assert_close(&packed, &float);
        }

        #[test]
        fn warm_start_matches_float_path() {
            let values = family_values(240, 6, 2, 17);
            let floats = featurize_values(&values);
            let warm = KMeans::fit(&floats, &KMeansConfig::new(2).with_seed(17));
            let trainer = MiniBatchKMeans::new(2)
                .with_batch_size(48)
                .with_steps(25)
                .with_seed(9);
            let packed =
                trainer.fit_set(&PackedMatrix::from_values(&values), Some(&warm));
            let float = trainer.fit(&floats, Some(&warm));
            assert_close(&packed, &float);
            assert!(
                (packed.inertia - float.inertia).abs()
                    <= 1e-3 * (1.0 + float.inertia.abs())
            );
        }
    }
}
