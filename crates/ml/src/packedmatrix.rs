//! Packed 0/1 training data: rows as `u64` words.
//!
//! The float training pipeline expands every sampled value into one `f32`
//! per bit before fitting — a 32× memory blow-up (100k × 64 B samples
//! become a 205 MB tensor) that is pure overhead when the inputs are bits.
//! [`PackedMatrix`] keeps the training set packed, eight value bytes per
//! word, and implements the training-side counterpart of the prediction
//! identity from [`crate::packed`]:
//!
//! * **Assignment** — per-iteration byte LUTs for `⟨c, x⟩` (built once per
//!   Lloyd iteration at `K · positions · 256` adds, amortized over N ≫ that
//!   samples) plus per-row popcounts cached at construction turn each
//!   sample-to-centroid distance into `value_len` lookups and adds.
//! * **Centroid update** — features are 0/1, so the per-cluster feature
//!   sums are *bit counts*: integer accumulators incremented by iterating
//!   the set bits of each word (`trailing_zeros` / clear-lowest-bit), then
//!   converted to `f32` once per iteration. No float adds in the inner
//!   loop, and integer partials merge exactly across worker threads.
//! * **Seeding** — k-means++ needs sample-to-sample distances, which on
//!   0/1 data are Hamming distances: one XOR + popcount per word pair, and
//!   exactly the integer the float path's `sq_dist` computes — so packed
//!   and float training draw identical seeds from the same RNG stream.
//!
//! Centroids remain fractional `f32` rows (the cluster means the paper's
//! Eq. 1 needs); only the samples stay packed.

use crate::kmeans::{Assignment, TrainSet};
use crate::matrix::Matrix;
use crate::packed::PackedPredictor;

/// A samples × bits 0/1 matrix stored packed: each row is
/// `ceil(bytes / 8)` little-endian `u64` words (LSB-first bit order within
/// each byte, matching [`crate::featurize::bits_to_features`]), with the
/// row's popcount cached for the distance identity.
#[derive(Debug, Clone)]
pub struct PackedMatrix {
    rows: usize,
    bytes_per_row: usize,
    words_per_row: usize,
    /// `rows * words_per_row` words; tail bytes of the last word are zero.
    data: Vec<u64>,
    /// Cached per-row popcounts (`popcount(x)` of the distance identity).
    popcounts: Vec<u32>,
}

impl PackedMatrix {
    /// Packs equal-length byte values into a training set.
    ///
    /// # Panics
    /// Panics if the values do not share one length.
    pub fn from_values<V: AsRef<[u8]>>(values: &[V]) -> Self {
        let bytes_per_row = values.first().map_or(0, |v| v.as_ref().len());
        let words_per_row = bytes_per_row.div_ceil(8);
        let mut data = vec![0u64; values.len() * words_per_row];
        let mut popcounts = Vec::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            let v = v.as_ref();
            assert_eq!(v.len(), bytes_per_row, "values must share one length");
            let row = &mut data[i * words_per_row..(i + 1) * words_per_row];
            let mut pop = 0u32;
            let mut chunks = v.chunks_exact(8);
            for (w, c) in row.iter_mut().zip(&mut chunks) {
                *w = u64::from_le_bytes(c.try_into().unwrap());
                pop += w.count_ones();
            }
            let rest = chunks.remainder();
            if !rest.is_empty() {
                let mut pad = [0u8; 8];
                pad[..rest.len()].copy_from_slice(rest);
                let w = u64::from_le_bytes(pad);
                row[words_per_row - 1] = w;
                pop += w.count_ones();
            }
            popcounts.push(pop);
        }
        PackedMatrix {
            rows: values.len(),
            bytes_per_row,
            words_per_row,
            data,
            popcounts,
        }
    }

    /// Number of samples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimensionality (bits per row).
    pub fn dims(&self) -> usize {
        self.bytes_per_row * 8
    }

    /// Value size in bytes.
    pub fn bytes_per_row(&self) -> usize {
        self.bytes_per_row
    }

    /// Row `i` as packed words.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Cached popcount of row `i`.
    #[inline]
    pub fn popcount(&self, i: usize) -> u32 {
        self.popcounts[i]
    }

    /// Hamming distance between rows `i` and `j` (one XOR + popcount per
    /// word pair) — on 0/1 features this *is* the squared L2 distance.
    /// Uses the hardware-popcnt kernel when the CPU has one.
    #[inline]
    pub fn hamming(&self, i: usize, j: usize) -> u64 {
        crate::simd::hamming_words(self.row_words(i), self.row_words(j))
    }

    /// DRAM held by the packed rows, in bytes — `1/32` of the float tensor
    /// the old pipeline materialized.
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }

    /// Expands the whole set into the dense float matrix (cold paths only:
    /// the elbow sweep and tests).
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.dims());
        for i in 0..self.rows {
            self.write_row(i, m.row_mut(i));
        }
        m
    }

    /// Adds row `i`'s set bits into the `bitcounts` stripe of its cluster —
    /// the integer centroid accumulator of the packed update step.
    #[inline]
    fn count_bits_into(&self, i: usize, bitcounts: &mut [u32]) {
        for (wi, &word) in self.row_words(i).iter().enumerate() {
            let mut w = word;
            while w != 0 {
                bitcounts[wi * 64 + w.trailing_zeros() as usize] += 1;
                w &= w - 1;
            }
        }
    }
}

impl TrainSet for PackedMatrix {
    fn n_samples(&self) -> usize {
        self.rows
    }

    fn n_dims(&self) -> usize {
        self.dims()
    }

    fn write_row(&self, i: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dims());
        for (j, slot) in out.iter_mut().enumerate() {
            let w = self.row_words(i)[j / 64];
            *slot = ((w >> (j % 64)) & 1) as f32;
        }
    }

    fn sample_sq_dist(&self, i: usize, j: usize) -> f32 {
        self.hamming(i, j) as f32
    }

    fn dist_to_centroid(&self, i: usize, centroid: &[f32]) -> f32 {
        // Sparse form of the identity: ‖c‖² + pop(x) − 2 Σ_{set bits} c[j].
        // Cold path (empty-cluster repair), so ‖c‖² is computed in place.
        let norm: f32 = centroid.iter().map(|&v| v * v).sum();
        let mut dot = 0.0f32;
        for (wi, &word) in self.row_words(i).iter().enumerate() {
            let mut w = word;
            while w != 0 {
                dot += centroid[wi * 64 + w.trailing_zeros() as usize];
                w &= w - 1;
            }
        }
        norm + self.popcounts[i] as f32 - 2.0 * dot
    }

    /// The packed assignment pass: one LUT build per call (per Lloyd
    /// iteration), then popcount-based distances and integer bit-count
    /// centroid accumulators, parallelized over contiguous row chunks.
    fn assign(&self, centroids: &Matrix, threads: usize, labels: &mut [usize]) -> Assignment {
        let n = self.rows;
        let k = centroids.rows();
        let d = self.dims();
        debug_assert_eq!(centroids.cols(), d);
        let threads = threads.max(1).min(n.max(1));
        // Rebuilt once per iteration: K · positions · 256 adds, amortized
        // over the N samples scanned below.
        let lut = PackedPredictor::from_centroids(centroids);

        let run_chunk = |start: usize, label_chunk: &mut [usize]| -> (Assignment, Vec<u32>) {
            let mut a = Assignment::zeros(k, d);
            let mut bitcounts = vec![0u32; k * d];
            let mut dist = vec![0.0f32; k];
            for (off, l) in label_chunk.iter_mut().enumerate() {
                let i = start + off;
                let c = lut.distances_from_words(self.row_words(i), self.popcounts[i], &mut dist);
                *l = c;
                a.counts[c] += 1;
                a.sse += dist[c];
                self.count_bits_into(i, &mut bitcounts[c * d..(c + 1) * d]);
            }
            (a, bitcounts)
        };

        let (mut merged, bitcounts) = if threads == 1 || n < 256 {
            run_chunk(0, labels)
        } else {
            let chunk = n.div_ceil(threads);
            let label_chunks: Vec<&mut [usize]> = labels.chunks_mut(chunk).collect();
            let mut partials = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (t, label_chunk) in label_chunks.into_iter().enumerate() {
                    let run_chunk = &run_chunk;
                    handles.push(scope.spawn(move || run_chunk(t * chunk, label_chunk)));
                }
                for h in handles {
                    partials.push(h.join().expect("packed kmeans worker panicked"));
                }
            });
            let (mut merged, mut bitcounts) = (Assignment::zeros(k, d), vec![0u32; k * d]);
            for (a, bc) in partials {
                merged.sse += a.sse;
                for (m, c) in merged.counts.iter_mut().zip(&a.counts) {
                    *m += c;
                }
                // Integer partials merge exactly — no float association
                // drift across thread counts.
                for (m, b) in bitcounts.iter_mut().zip(&bc) {
                    *m += b;
                }
            }
            (merged, bitcounts)
        };

        // Bit counts *are* the 0/1 feature sums; one exact conversion per
        // iteration.
        for (s, &b) in merged.sums.iter_mut().zip(&bitcounts) {
            *s = b as f32;
        }
        merged
    }

    fn label_subset(&self, centroids: &Matrix, idx: &[usize], labels: &mut [usize]) {
        let lut = PackedPredictor::from_centroids(centroids);
        let mut dist = vec![0.0f32; centroids.rows()];
        for (l, &i) in labels.iter_mut().zip(idx) {
            *l = lut.distances_from_words(self.row_words(i), self.popcounts[i], &mut dist);
        }
    }

    fn select(&self, idx: &[usize]) -> Self {
        let mut data = Vec::with_capacity(idx.len() * self.words_per_row);
        let mut popcounts = Vec::with_capacity(idx.len());
        for &i in idx {
            data.extend_from_slice(self.row_words(i));
            popcounts.push(self.popcounts[i]);
        }
        PackedMatrix {
            rows: idx.len(),
            bytes_per_row: self.bytes_per_row,
            words_per_row: self.words_per_row,
            data,
            popcounts,
        }
    }
}

/// Deterministic family-structured test values (byte-fill families with a
/// decisive margin plus one xorshift noise byte) — the one generator behind
/// every packed-vs-float training equivalence test in this crate, so the
/// data shape those tests compare on cannot silently diverge.
#[cfg(test)]
pub(crate) fn family_test_values(
    n: usize,
    bytes: usize,
    families: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| {
            let fill = ((i % families) * 255 / families) as u8;
            (0..bytes)
                .map(|b| if b == bytes - 1 { next() as u8 } else { fill })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{bits_to_features, featurize_values};
    use crate::kmeans::{KMeans, KMeansConfig};
    use crate::matrix::sq_dist;

    use super::family_test_values as family_values;

    #[test]
    fn packing_roundtrips_through_write_row() {
        for bytes in [1usize, 3, 8, 11, 16] {
            let values = family_values(9, bytes, 3, 7);
            let packed = PackedMatrix::from_values(&values);
            assert_eq!(packed.rows(), 9);
            assert_eq!(packed.dims(), bytes * 8);
            let mut row = vec![0.0f32; bytes * 8];
            for (i, v) in values.iter().enumerate() {
                packed.write_row(i, &mut row);
                assert_eq!(row, bits_to_features(v), "row {i} bytes {bytes}");
                let pop: u32 = v.iter().map(|b| b.count_ones()).sum();
                assert_eq!(packed.popcount(i), pop);
            }
        }
    }

    #[test]
    fn hamming_matches_float_sq_dist() {
        let values = family_values(12, 5, 4, 3);
        let packed = PackedMatrix::from_values(&values);
        let floats = featurize_values(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                assert_eq!(
                    packed.sample_sq_dist(i, j),
                    sq_dist(floats.row(i), floats.row(j)),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn assignment_matches_float_assignment() {
        let values = family_values(64, 6, 4, 11);
        let packed = PackedMatrix::from_values(&values);
        let floats = featurize_values(&values);
        let centroids = {
            // A fitted float model's centroids: fractional, realistic.
            KMeans::fit(&floats, &KMeansConfig::new(4).with_seed(5))
                .centroids()
                .clone()
        };
        let mut pl = vec![0usize; 64];
        let mut fl = vec![0usize; 64];
        let pa = packed.assign(&centroids, 1, &mut pl);
        let fa = TrainSet::assign(&floats, &centroids, 1, &mut fl);
        assert_eq!(pl, fl);
        assert_eq!(pa.counts, fa.counts);
        for (p, f) in pa.sums.iter().zip(&fa.sums) {
            // Bit counts are exact; float sums of 0/1 are exact too.
            assert_eq!(p, f);
        }
        assert!((pa.sse - fa.sse).abs() <= 1e-2 * (1.0 + fa.sse));
    }

    #[test]
    fn threaded_assignment_is_exact_vs_single() {
        let values = family_values(600, 9, 5, 23);
        let packed = PackedMatrix::from_values(&values);
        let centroids = KMeans::fit_set(&packed, &KMeansConfig::new(5).with_seed(2))
            .centroids()
            .clone();
        let mut l1 = vec![0usize; 600];
        let mut l4 = vec![0usize; 600];
        let a1 = packed.assign(&centroids, 1, &mut l1);
        let a4 = packed.assign(&centroids, 4, &mut l4);
        assert_eq!(l1, l4);
        assert_eq!(a1.counts, a4.counts);
        // Integer accumulators: sums are bit-identical across thread counts.
        assert_eq!(a1.sums, a4.sums);
    }

    #[test]
    fn select_copies_rows_and_popcounts() {
        let values = family_values(10, 4, 2, 9);
        let packed = PackedMatrix::from_values(&values);
        let sub = packed.select(&[7, 0, 3]);
        assert_eq!(sub.rows(), 3);
        assert_eq!(sub.row_words(0), packed.row_words(7));
        assert_eq!(sub.popcount(1), packed.popcount(0));
        assert_eq!(sub.row_words(2), packed.row_words(3));
    }

    #[test]
    fn empty_and_ragged() {
        let empty = PackedMatrix::from_values::<&[u8]>(&[]);
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.dims(), 0);
        let r = std::panic::catch_unwind(|| {
            PackedMatrix::from_values(&[vec![0u8; 2], vec![0u8; 3]])
        });
        assert!(r.is_err(), "ragged values must be rejected");
    }

    #[test]
    fn to_matrix_equals_featurize() {
        let values = family_values(8, 7, 3, 1);
        assert_eq!(
            PackedMatrix::from_values(&values).to_matrix(),
            featurize_values(&values)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::featurize::featurize_values;
    use crate::kmeans::{KMeans, KMeansConfig};
    use proptest::prelude::*;

    proptest! {
        /// Full-fit equivalence: the packed kernel and the float reference
        /// train to the same model (identical k-means++ seeds by the exact
        /// integer-distance argument, then tolerance-level centroids). The
        /// generator keeps family margins decisive so Lloyd's trajectory
        /// has no near-ties for f32 reordering to flip.
        #[test]
        fn packed_fit_matches_float_fit(
            seed in 0u64..300,
            value_bytes in 2usize..16,
            families in 2usize..5,
            n in 24usize..80,
        ) {
            let values = super::family_test_values(n, value_bytes, families, seed);
            let cfg = KMeansConfig::new(families).with_seed(seed);
            let packed = KMeans::fit_set(&PackedMatrix::from_values(&values), &cfg);
            let floats = featurize_values(&values);
            let float = KMeans::fit(&floats, &cfg);
            prop_assert_eq!(packed.k(), float.k());
            prop_assert_eq!(packed.labels(&floats), float.labels(&floats));
            for c in 0..packed.k() {
                for (p, f) in packed.centroid(c).iter().zip(float.centroid(c)) {
                    prop_assert!(
                        (p - f).abs() <= 1e-4,
                        "centroid {} diverged: {} vs {}", c, p, f
                    );
                }
            }
            prop_assert!(
                (packed.inertia - float.inertia).abs()
                    <= 1e-3 * (1.0 + float.inertia.abs())
            );
        }
    }
}
