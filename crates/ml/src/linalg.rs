//! Dense symmetric eigendecomposition.
//!
//! PCA needs the eigenpairs of a covariance (or Gram) matrix. We use the
//! classic two-stage approach: Householder reduction to tridiagonal form
//! (`tred2`) followed by the implicit-shift QL algorithm (`tqli`) — the
//! standard O(n³) routine with a small constant, comfortable up to the
//! ~2000×2000 Gram matrices our Figure 3 harness produces.

/// Eigendecomposition of a real symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors: `vectors[i]` is the unit eigenvector for `values[i]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenpairs of the symmetric matrix `a` (row-major, n×n).
///
/// # Panics
/// Panics if `a.len() != n * n` or the QL iteration fails to converge
/// (pathological input; does not occur for PSD covariance matrices).
pub fn sym_eigen(a: &[f64], n: usize) -> SymEigen {
    assert_eq!(a.len(), n * n, "matrix must be n×n");
    if n == 0 {
        return SymEigen {
            values: Vec::new(),
            vectors: Vec::new(),
        };
    }
    // z starts as a copy of `a` and ends as the eigenvector matrix.
    let mut z: Vec<f64> = a.to_vec();
    let mut d = vec![0.0f64; n]; // diagonal
    let mut e = vec![0.0f64; n]; // off-diagonal
    tred2(&mut z, n, &mut d, &mut e);
    tqli(&mut d, &mut e, n, &mut z);

    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].total_cmp(&d[i]));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| z[row * n + col]).collect())
        .collect();
    SymEigen { values, vectors }
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (Numerical Recipes `tred2`). On exit `z` holds the orthogonal transform
/// Q, `d` the diagonal and `e` the sub-diagonal.
fn tred2(z: &mut [f64], n: usize, d: &mut [f64], e: &mut [f64]) {
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let mut scale = 0.0f64;
            for k in 0..=l {
                scale += z[i * n + k].abs();
            }
            if scale == 0.0 {
                e[i] = z[i * n + l];
            } else {
                for k in 0..=l {
                    z[i * n + k] /= scale;
                    h += z[i * n + k] * z[i * n + k];
                }
                let mut f = z[i * n + l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[i * n + l] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[j * n + i] = z[i * n + j] / h;
                    let mut g = 0.0f64;
                    for k in 0..=j {
                        g += z[j * n + k] * z[i * n + k];
                    }
                    for k in (j + 1)..=l {
                        g += z[k * n + j] * z[i * n + k];
                    }
                    e[j] = g / h;
                    f += e[j] * z[i * n + j];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[i * n + j];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        z[j * n + k] -= f * e[k] + g * z[i * n + k];
                    }
                }
            }
        } else {
            e[i] = z[i * n + l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0f64;
                for k in 0..i {
                    g += z[i * n + k] * z[k * n + j];
                }
                for k in 0..i {
                    z[k * n + j] -= g * z[k * n + i];
                }
            }
        }
        d[i] = z[i * n + i];
        z[i * n + i] = 1.0;
        for j in 0..i {
            z[j * n + i] = 0.0;
            z[i * n + j] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a tridiagonal matrix (Numerical Recipes
/// `tqli`), accumulating eigenvectors into `z`.
fn tqli(d: &mut [f64], e: &mut [f64], n: usize, z: &mut [f64]) {
    if n <= 1 {
        return;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tqli failed to converge");
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    f = z[k * n + i + 1];
                    z[k * n + i + 1] = s * z[k * n + i] + c * f;
                    z[k * n + i] = c * z[k * n + i] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(a: &[f64], n: usize, v: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * v[j]).sum())
            .collect()
    }

    #[test]
    fn diagonal_matrix() {
        let a = [3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let e = sym_eigen(&a, 3);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = [2.0, 1.0, 1.0, 2.0];
        let e = sym_eigen(&a, 2);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v = &e.vectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn eigen_equation_holds_on_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 12;
        let mut a = vec![0.0f64; n * n];
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let e = sym_eigen(&a, n);
        for (lam, v) in e.values.iter().zip(&e.vectors) {
            let av = mat_vec(&a, n, v);
            for (x, y) in av.iter().zip(v) {
                assert!((x - lam * y).abs() < 1e-8, "Av != λv");
            }
            // Unit norm.
            let norm: f64 = v.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-8);
        }
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = [4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 5.0];
        let e = sym_eigen(&a, 3);
        let trace = 4.0 + 3.0 + 5.0;
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single() {
        assert!(sym_eigen(&[], 0).values.is_empty());
        let e = sym_eigen(&[7.0], 1);
        assert_eq!(e.values, vec![7.0]);
        assert_eq!(e.vectors, vec![vec![1.0]]);
    }
}
