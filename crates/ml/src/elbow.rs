//! The elbow method for choosing K (§V-A.1, Figure 4).
//!
//! The paper sweeps K, records the K-means SSE (Eq. 1) and picks the "elbow"
//! where the curve's decrease flattens. [`sse_curve`] produces the sweep and
//! [`elbow_point`] detects the knee with the maximum-chord-distance rule
//! (the geometric formulation of the Kneedle detector): the elbow is the
//! point farthest below the straight line joining the curve's endpoints.

use crate::kmeans::{KMeans, KMeansConfig};
use crate::matrix::Matrix;

/// Runs K-means for each K in `ks` and returns `(k, sse)` pairs.
pub fn sse_curve(data: &Matrix, ks: &[usize], seed: u64) -> Vec<(usize, f32)> {
    ks.iter()
        .map(|&k| {
            let m = KMeans::fit(data, &KMeansConfig::new(k).with_seed(seed));
            (k, m.inertia)
        })
        .collect()
}

/// Detects the elbow of an SSE curve, returning the chosen K.
///
/// Uses the maximum distance from the chord between the first and last
/// points, computed on a **log SSE** scale. K-means SSE curves decay
/// steeply over orders of magnitude; on the raw scale the chord rule latches
/// onto the first large drop, while the log scale finds the K after which
/// further splits stop paying — the "sharp decrease" the paper reads off
/// Figure 4. Returns the first K for degenerate curves (fewer than 3 points
/// or zero spans).
pub fn elbow_point(curve: &[(usize, f32)]) -> usize {
    if curve.is_empty() {
        return 1;
    }
    if curve.len() < 3 {
        return curve[0].0;
    }
    // Log scale with an epsilon floor so perfectly-clustered (SSE = 0)
    // points stay finite.
    let floor = curve
        .iter()
        .map(|&(_, s)| f64::from(s))
        .filter(|s| *s > 0.0)
        .fold(f64::INFINITY, f64::min)
        .min(1.0)
        * 1e-3;
    let logy = |s: f32| (f64::from(s).max(floor)).ln();

    let (x0, y0) = (curve[0].0 as f64, logy(curve[0].1));
    let (x1, y1) = (
        curve[curve.len() - 1].0 as f64,
        logy(curve[curve.len() - 1].1),
    );
    let dx = x1 - x0;
    let dy = y1 - y0;
    if dx.abs() < 1e-12 || dy.abs() < 1e-12 {
        return curve[0].0;
    }

    let mut best = (curve[0].0, f64::MIN);
    for &(k, sse) in curve {
        // Normalized coordinates: both endpoints map onto the chord
        // (0,0)→(1,1). A steep-then-flat SSE curve normalizes to points
        // *above* that chord, and the knee maximizes the gap.
        let nx = (k as f64 - x0) / dx;
        let ny = (logy(sse) - y0) / dy;
        let dist = ny - nx;
        if dist > best.1 {
            best = (k, dist);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn detects_knee_of_synthetic_curve() {
        // Sharp drop until k=5, then flat — the paper's Figure 4 shape.
        let curve: Vec<(usize, f32)> = vec![
            (1, 1000.0),
            (2, 600.0),
            (3, 350.0),
            (4, 180.0),
            (5, 80.0),
            (6, 70.0),
            (7, 63.0),
            (8, 58.0),
            (9, 55.0),
            (10, 53.0),
        ];
        assert_eq!(elbow_point(&curve), 5);
    }

    #[test]
    fn linear_curve_has_no_strong_knee() {
        let curve: Vec<(usize, f32)> = (1..=10).map(|k| (k, 100.0 - 10.0 * k as f32)).collect();
        // All distances ~0; returns some K without panicking.
        let k = elbow_point(&curve);
        assert!((1..=10).contains(&k));
    }

    #[test]
    fn degenerate_curves() {
        assert_eq!(elbow_point(&[]), 1);
        assert_eq!(elbow_point(&[(4, 10.0)]), 4);
        assert_eq!(elbow_point(&[(1, 10.0), (2, 5.0)]), 1);
        // Flat curve (dy = 0).
        assert_eq!(elbow_point(&[(1, 5.0), (2, 5.0), (3, 5.0)]), 1);
    }

    #[test]
    fn sse_curve_is_monotone_decreasing_on_blobs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut rows = Vec::new();
        for c in 0..5 {
            for _ in 0..30 {
                rows.push(vec![
                    c as f32 * 10.0 + rng.gen::<f32>(),
                    c as f32 * 10.0 + rng.gen::<f32>(),
                ]);
            }
        }
        let data = Matrix::from_rows(&rows);
        let curve = sse_curve(&data, &[1, 2, 3, 4, 5, 6, 7, 8], 0);
        // SSE broadly decreases (allow small non-monotonicity from local
        // optima at large k).
        assert!(curve[0].1 > curve[4].1);
        // Five blobs -> elbow at (or adjacent to) k = 5.
        let elbow = elbow_point(&curve);
        assert!((4..=6).contains(&elbow), "elbow={elbow} curve={curve:?}");
    }
}
