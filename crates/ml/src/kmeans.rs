//! K-means clustering: Lloyd's algorithm with k-means++ initialization.
//!
//! This is the model at the heart of PNW (§V-A.1). The objective is the
//! paper's Eq. 1: minimize the sum of squared L2 distances between samples
//! and their cluster centroid. On bit features this equals the total
//! within-cluster Hamming distance, which is why clusters group memory
//! locations PNW can overwrite cheaply.
//!
//! Training supports multicore assignment via scoped threads —
//! Figure 11 of the paper measures exactly this (1 core vs 4 cores).
//!
//! Training is generic over [`TrainSet`]: the dense float [`Matrix`] (the
//! reference path, and the only choice after PCA projection) or the
//! bit-packed [`PackedMatrix`](crate::packedmatrix::PackedMatrix), which
//! runs the whole fit in the packed bit domain (LUT distances, integer
//! bit-count centroid accumulators) without ever materializing the 32×
//! larger float tensor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::{sq_dist, Matrix};

/// Per-iteration assignment statistics: what one pass over the training set
/// produces for the centroid update, regardless of the data representation.
pub struct Assignment {
    /// Samples assigned to each cluster.
    pub counts: Vec<usize>,
    /// k × d centroid sums, flattened row-major.
    pub sums: Vec<f32>,
    /// Sum of squared distances of every sample to its centroid (Eq. 1).
    pub sse: f32,
}

impl Assignment {
    /// An all-zero accumulator for `k` clusters of `d` dims.
    pub fn zeros(k: usize, d: usize) -> Self {
        Assignment {
            counts: vec![0; k],
            sums: vec![0.0; k * d],
            sse: 0.0,
        }
    }
}

/// A K-means training set. Implemented by the dense float [`Matrix`] and by
/// the packed bit matrix; [`KMeans::fit_set`] and
/// [`MiniBatchKMeans::fit_set`](crate::minibatch::MiniBatchKMeans::fit_set)
/// are generic over it, so the float path survives for PCA-projected models
/// while raw bit-feature models train without featurization.
///
/// Centroids stay fractional `f32` either way — only the *samples* are
/// representation-specific.
pub trait TrainSet: Sync {
    /// Number of samples.
    fn n_samples(&self) -> usize;

    /// Feature dimensionality.
    fn n_dims(&self) -> usize;

    /// Expands sample `i` into float features (`out.len() == n_dims()`).
    fn write_row(&self, i: usize, out: &mut [f32]);

    /// Squared L2 distance between samples `i` and `j`. On 0/1 data this is
    /// the Hamming distance — an exact integer in both representations, so
    /// k-means++ seeding draws identical centers from either.
    fn sample_sq_dist(&self, i: usize, j: usize) -> f32;

    /// Squared L2 distance from sample `i` to a float centroid row.
    fn dist_to_centroid(&self, i: usize, centroid: &[f32]) -> f32;

    /// One full assignment pass: labels every sample and accumulates the
    /// per-cluster counts, feature sums and the SSE.
    fn assign(&self, centroids: &Matrix, threads: usize, labels: &mut [usize]) -> Assignment;

    /// Labels the samples selected by `idx` (`labels.len() == idx.len()`) —
    /// the mini-batch assignment phase.
    fn label_subset(&self, centroids: &Matrix, idx: &[usize], labels: &mut [usize]);

    /// Copies the selected samples into a new training set of the same
    /// representation.
    fn select(&self, idx: &[usize]) -> Self
    where
        Self: Sized;
}

impl TrainSet for Matrix {
    fn n_samples(&self) -> usize {
        self.rows()
    }

    fn n_dims(&self) -> usize {
        self.cols()
    }

    fn write_row(&self, i: usize, out: &mut [f32]) {
        out.copy_from_slice(self.row(i));
    }

    fn sample_sq_dist(&self, i: usize, j: usize) -> f32 {
        sq_dist(self.row(i), self.row(j))
    }

    fn dist_to_centroid(&self, i: usize, centroid: &[f32]) -> f32 {
        sq_dist(self.row(i), centroid)
    }

    fn assign(&self, centroids: &Matrix, threads: usize, labels: &mut [usize]) -> Assignment {
        assign(self, centroids, threads, labels)
    }

    fn label_subset(&self, centroids: &Matrix, idx: &[usize], labels: &mut [usize]) {
        for (l, &i) in labels.iter_mut().zip(idx) {
            *l = nearest(centroids, self.row(i)).0;
        }
    }

    fn select(&self, idx: &[usize]) -> Self {
        self.select_rows(idx)
    }
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// k-means++ (D² weighting) — the scikit-learn default the paper used.
    KMeansPlusPlus,
    /// Uniformly random distinct samples (the ablation baseline).
    Random,
}

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters K.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total squared centroid movement.
    pub tol: f32,
    /// RNG seed (all training is deterministic given the seed).
    pub seed: u64,
    /// Worker threads for the assignment step (1 = single-core).
    pub threads: usize,
    /// Initialization strategy.
    pub init: Init,
}

impl KMeansConfig {
    /// Defaults matching scikit-learn: k-means++ init, 50 iterations,
    /// tol 1e-4, single-threaded.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 50,
            tol: 1e-4,
            seed: 0xC0FFEE,
            threads: 1,
            init: Init::KMeansPlusPlus,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the initialization strategy.
    pub fn with_init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iters(mut self, n: usize) -> Self {
        self.max_iters = n;
        self
    }
}

/// A fitted K-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Matrix,
    /// Final within-cluster sum of squared distances (the paper's SSE /
    /// Eq. 1 objective).
    pub inertia: f32,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Trains on `data` (samples × features).
    ///
    /// `k` is clamped to the number of samples. With no samples at all the
    /// model has a single all-zeros centroid so that `predict` stays total.
    pub fn fit(data: &Matrix, cfg: &KMeansConfig) -> KMeans {
        Self::fit_set(data, cfg)
    }

    /// [`KMeans::fit`] over any [`TrainSet`] representation — the packed
    /// bit matrix trains here without ever expanding to floats.
    pub fn fit_set<D: TrainSet>(data: &D, cfg: &KMeansConfig) -> KMeans {
        let n = data.n_samples();
        let d = data.n_dims();
        if n == 0 {
            return KMeans {
                centroids: Matrix::zeros(1, d),
                inertia: 0.0,
                iterations: 0,
            };
        }
        let k = cfg.k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut centroids = match cfg.init {
            Init::KMeansPlusPlus => kmeans_pp_init(data, k, &mut rng),
            Init::Random => random_init(data, k, &mut rng),
        };

        let mut labels = vec![0usize; n];
        let mut inertia = f32::INFINITY;
        let mut iterations = 0;

        for iter in 0..cfg.max_iters.max(1) {
            iterations = iter + 1;
            let a = data.assign(&centroids, cfg.threads, &mut labels);
            inertia = a.sse;

            // Recompute centroids; repair empty clusters by stealing the
            // sample farthest from its assigned centroid.
            let mut new_centroids = Matrix::zeros(k, d);
            for c in 0..k {
                if a.counts[c] == 0 {
                    let far = farthest_sample(data, &centroids, &labels);
                    data.write_row(far, new_centroids.row_mut(c));
                } else {
                    let inv = 1.0 / a.counts[c] as f32;
                    for (dst, &s) in new_centroids.row_mut(c).iter_mut().zip(&a.sums[c * d..(c + 1) * d]) {
                        *dst = s * inv;
                    }
                }
            }

            let shift: f32 = (0..k)
                .map(|c| sq_dist(centroids.row(c), new_centroids.row(c)))
                .sum();
            centroids = new_centroids;
            if shift <= cfg.tol {
                break;
            }
        }

        // Final consistent inertia for the returned centroids.
        let a = data.assign(&centroids, cfg.threads, &mut labels);
        inertia = a.sse.min(inertia);

        KMeans {
            centroids,
            inertia,
            iterations,
        }
    }

    /// Builds a model directly from centroids (used by mini-batch training
    /// and model deserialization). `inertia` is set to NaN until computed
    /// against data via [`KMeans::sse`].
    pub fn from_centroids(centroids: Matrix, iterations: usize) -> KMeans {
        KMeans {
            centroids,
            inertia: f32::NAN,
            iterations,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.centroids.cols()
    }

    /// Centroid of cluster `c`.
    pub fn centroid(&self, c: usize) -> &[f32] {
        self.centroids.row(c)
    }

    /// All centroids as a matrix.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Index of the nearest centroid to `x` — `model.predict(D)` of the
    /// paper's Algorithm 2.
    pub fn predict(&self, x: &[f32]) -> usize {
        nearest(&self.centroids, x).0
    }

    /// Nearest centroid and its squared distance.
    pub fn predict_with_distance(&self, x: &[f32]) -> (usize, f32) {
        nearest(&self.centroids, x)
    }

    /// Squared distance from `x` to every centroid, written into `out`;
    /// returns the argmin cluster. The allocation-free kernel behind the
    /// PCA-space prediction path (bit-feature models use the packed LUT
    /// predictor in [`crate::packed`] instead).
    ///
    /// # Panics
    /// Panics if `out.len() != self.k()`.
    pub fn distances_into(&self, x: &[f32], out: &mut [f32]) -> usize {
        assert_eq!(out.len(), self.k(), "distance buffer length mismatch");
        let mut best = (0usize, f32::INFINITY);
        for (c, (slot, row)) in out.iter_mut().zip(self.centroids.iter_rows()).enumerate() {
            let dist = sq_dist(row, x);
            *slot = dist;
            if dist < best.1 {
                best = (c, dist);
            }
        }
        best.0
    }

    /// Labels every row of `data` — `model.labels` of Algorithm 1.
    pub fn labels(&self, data: &Matrix) -> Vec<usize> {
        let mut labels = vec![0usize; data.rows()];
        assign(data, &self.centroids, 1, &mut labels);
        labels
    }

    /// Sum of squared errors of `data` under this model (Eq. 1).
    pub fn sse(&self, data: &Matrix) -> f32 {
        let mut labels = vec![0usize; data.rows()];
        assign(data, &self.centroids, 1, &mut labels).sse
    }
}

fn nearest(centroids: &Matrix, x: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (c, row) in centroids.iter_rows().enumerate() {
        let dist = sq_dist(row, x);
        if dist < best.1 {
            best = (c, dist);
        }
    }
    best
}

/// Assignment step: labels every sample, accumulating per-cluster sums,
/// counts and the SSE. Parallelized over contiguous row chunks.
fn assign(data: &Matrix, centroids: &Matrix, threads: usize, labels: &mut [usize]) -> Assignment {
    let n = data.rows();
    let k = centroids.rows();
    let d = data.cols();
    let threads = threads.max(1).min(n.max(1));

    if threads == 1 || n < 256 {
        let mut a = Assignment::zeros(k, d);
        for (i, label) in labels.iter_mut().enumerate().take(n) {
            let (c, dist) = nearest(centroids, data.row(i));
            *label = c;
            a.counts[c] += 1;
            a.sse += dist;
            for (s, &x) in a.sums[c * d..(c + 1) * d].iter_mut().zip(data.row(i)) {
                *s += x;
            }
        }
        return a;
    }

    let chunk = n.div_ceil(threads);
    let mut partials: Vec<Assignment> = Vec::with_capacity(threads);
    let label_chunks: Vec<&mut [usize]> = labels.chunks_mut(chunk).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, label_chunk) in label_chunks.into_iter().enumerate() {
            let start = t * chunk;
            handles.push(scope.spawn(move || {
                let mut a = Assignment::zeros(k, d);
                for (off, l) in label_chunk.iter_mut().enumerate() {
                    let row = data.row(start + off);
                    let (c, dist) = nearest(centroids, row);
                    *l = c;
                    a.counts[c] += 1;
                    a.sse += dist;
                    for (s, &x) in a.sums[c * d..(c + 1) * d].iter_mut().zip(row) {
                        *s += x;
                    }
                }
                a
            }));
        }
        for h in handles {
            partials.push(h.join().expect("kmeans worker panicked"));
        }
    });

    let mut merged = Assignment::zeros(k, d);
    for p in partials {
        merged.sse += p.sse;
        for (m, c) in merged.counts.iter_mut().zip(&p.counts) {
            *m += c;
        }
        for (m, s) in merged.sums.iter_mut().zip(&p.sums) {
            *m += s;
        }
    }
    merged
}

fn farthest_sample<D: TrainSet>(data: &D, centroids: &Matrix, labels: &[usize]) -> usize {
    let mut best = (0usize, -1.0f32);
    for (i, &label) in labels.iter().enumerate().take(data.n_samples()) {
        let d = data.dist_to_centroid(i, centroids.row(label));
        if d > best.1 {
            best = (i, d);
        }
    }
    best.0
}

/// Copies the selected samples into a float centroid matrix.
fn gather<D: TrainSet>(data: &D, idx: &[usize]) -> Matrix {
    let mut m = Matrix::zeros(idx.len(), data.n_dims());
    for (r, &i) in idx.iter().enumerate() {
        data.write_row(i, m.row_mut(r));
    }
    m
}

fn random_init<D: TrainSet>(data: &D, k: usize, rng: &mut StdRng) -> Matrix {
    // Sample k distinct row indices (partial Fisher-Yates).
    let n = data.n_samples();
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    gather(data, &idx[..k])
}

/// k-means++ seeding: first centroid uniform, then D²-weighted.
///
/// Sample-to-sample distances go through [`TrainSet::sample_sq_dist`]; on
/// 0/1 data those are exact integers in both representations, so the packed
/// and float paths draw *identical* seeds from the same RNG stream.
fn kmeans_pp_init<D: TrainSet>(data: &D, k: usize, rng: &mut StdRng) -> Matrix {
    let n = data.n_samples();
    let mut chosen = Vec::with_capacity(k);
    chosen.push(rng.gen_range(0..n));
    let mut dist2: Vec<f32> = (0..n).map(|i| data.sample_sq_dist(i, chosen[0])).collect();

    while chosen.len() < k {
        let total: f32 = dist2.iter().sum();
        let next = if total <= f32::EPSILON {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f32>() * total;
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        chosen.push(next);
        for (i, slot) in dist2.iter_mut().enumerate().take(n) {
            let d = data.sample_sq_dist(i, next);
            if d < *slot {
                *slot = d;
            }
        }
    }
    gather(data, &chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)];
        let mut rng = StdRng::seed_from_u64(7);
        for &(cx, cy) in &centers {
            for _ in 0..50 {
                rows.push(vec![
                    cx + rng.gen::<f32>() - 0.5,
                    cy + rng.gen::<f32>() - 0.5,
                ]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs();
        let m = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(1));
        let labels = m.labels(&data);
        // Each blob is internally consistent…
        for blob in 0..3 {
            let l0 = labels[blob * 50];
            assert!(labels[blob * 50..(blob + 1) * 50].iter().all(|&l| l == l0));
        }
        // …and blobs are mutually distinct.
        assert_ne!(labels[0], labels[50]);
        assert_ne!(labels[50], labels[100]);
        assert!(m.inertia < 100.0);
    }

    #[test]
    fn table2_worked_example() {
        // The paper's Table II: 6 memory entries forming 3 pairs. The text
        // gives the exact expected centroids.
        let rows: Vec<Vec<f32>> = vec![
            vec![0., 0., 0., 0., 0., 1., 1., 1.],
            vec![0., 0., 0., 0., 1., 0., 1., 1.],
            vec![0., 0., 1., 0., 1., 1., 0., 0.],
            vec![0., 0., 1., 1., 1., 1., 0., 0.],
            vec![1., 1., 0., 1., 0., 0., 0., 0.],
            vec![0., 1., 1., 1., 0., 0., 0., 0.],
        ];
        let data = Matrix::from_rows(&rows);
        let m = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(42));
        let labels = m.labels(&data);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[2], labels[4]);
        // Centroid of the cluster holding rows 0,1 must be the paper's
        // [0 0 0 0 .5 .5 1 1].
        let c = m.centroid(labels[0]);
        let expected = [0.0f32, 0., 0., 0., 0.5, 0.5, 1., 1.];
        for (a, b) in c.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-6, "{c:?} != {expected:?}");
        }
        // And the paper's claim: writing d1=[0,0,0,0,1,1,1,1] into its
        // cluster flips exactly 1 bit against either member.
        let d1 = [0.0f32, 0., 0., 0., 1., 1., 1., 1.];
        assert_eq!(m.predict(&d1), labels[0]);
    }

    #[test]
    fn k_clamped_to_samples() {
        let data = Matrix::from_rows(&[vec![0.0f32, 0.0], vec![1.0, 1.0]]);
        let m = KMeans::fit(&data, &KMeansConfig::new(10));
        assert_eq!(m.k(), 2);
    }

    #[test]
    fn k1_centroid_is_mean() {
        let data = Matrix::from_rows(&[vec![0.0f32, 0.0], vec![2.0, 4.0]]);
        let m = KMeans::fit(&data, &KMeansConfig::new(1));
        assert_eq!(m.centroid(0), &[1.0, 2.0]);
    }

    #[test]
    fn empty_data_yields_total_predict() {
        let m = KMeans::fit(&Matrix::zeros(0, 4), &KMeansConfig::new(3));
        assert_eq!(m.predict(&[1.0, 2.0, 3.0, 4.0]), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let a = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(9));
        let b = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(9));
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn multicore_matches_single_core() {
        let data = blobs();
        let a = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(5).with_threads(1));
        let b = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(5).with_threads(4));
        // Same seed, same init, same deterministic reductions per chunk —
        // labels must agree (sums may differ by float association, so
        // compare assignments).
        assert_eq!(a.labels(&data), b.labels(&data));
    }

    #[test]
    fn distances_into_returns_argmin_and_full_vector() {
        let data = blobs();
        let m = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(2));
        let x = data.row(0); // in blob 0
        let mut dist = vec![0.0f32; 3];
        let argmin = m.distances_into(x, &mut dist);
        assert_eq!(argmin, m.predict(x));
        for (c, &d) in dist.iter().enumerate() {
            assert_eq!(d, sq_dist(m.centroid(c), x));
            assert!(dist[argmin] <= d);
        }
    }

    #[test]
    fn random_init_works_too() {
        let data = blobs();
        let m = KMeans::fit(
            &data,
            &KMeansConfig::new(3).with_seed(3).with_init(Init::Random),
        );
        assert!(m.inertia < 200.0);
    }

    #[test]
    fn duplicate_points_dont_hang_kmeanspp() {
        let data = Matrix::from_rows(&vec![vec![1.0f32, 1.0]; 20]);
        let m = KMeans::fit(&data, &KMeansConfig::new(4).with_seed(0));
        assert!(m.inertia <= f32::EPSILON);
    }

    #[test]
    fn sse_decreases_with_k() {
        let data = blobs();
        let s1 = KMeans::fit(&data, &KMeansConfig::new(1).with_seed(1)).inertia;
        let s3 = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(1)).inertia;
        assert!(s3 < s1);
    }
}
