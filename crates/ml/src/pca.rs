//! Principal component analysis (§V-A.1, "Addressing the Curse of
//! Dimensionality").
//!
//! Large values featurize into thousands of bit-dimensions; the paper
//! projects them onto the leading principal components before clustering
//! (Figure 3 keeps the first components explaining >80% of the variance for
//! MNIST).
//!
//! Implementation: the Gram trick. For n samples × d features with n ≤ d we
//! eigendecompose the n×n Gram matrix instead of the d×d covariance — the
//! nonzero eigenvalues coincide and each covariance eigenvector is recovered
//! as `Xᵀu / ‖Xᵀu‖`. When d < n the covariance is decomposed directly.

use crate::linalg::sym_eigen;
use crate::matrix::Matrix;

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// `n_components × d`, rows are unit principal axes.
    components: Matrix,
    /// Full eigenvalue spectrum (descending, length `min(n-1, d)` nonzero
    /// entries at most).
    spectrum: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits on `data` (samples × features), retaining `n_components`
    /// components (clamped to the spectrum's length). Single-threaded; see
    /// [`Pca::fit_with_threads`] for the multicore variant Figure 11 times.
    pub fn fit(data: &Matrix, n_components: usize) -> Pca {
        Self::fit_with_threads(data, n_components, 1)
    }

    /// Fits with `threads` workers parallelizing the Gram-matrix build (the
    /// dominant cost for wide data).
    pub fn fit_with_threads(data: &Matrix, n_components: usize, threads: usize) -> Pca {
        let n = data.rows();
        let d = data.cols();
        if n == 0 || d == 0 {
            return Pca {
                mean: vec![0.0; d],
                components: Matrix::zeros(0, d),
                spectrum: Vec::new(),
                total_variance: 0.0,
            };
        }
        let mean = data.col_mean();
        let xc = data.centered(&mean);
        let denom = (n.max(2) - 1) as f64;

        let (spectrum, components) = if n <= d {
            // Gram trick: G[i][j] = <xi, xj> / (n-1). Rows are independent,
            // so they parallelize over contiguous chunks.
            let mut g = vec![0.0f64; n * n];
            let threads = threads.max(1).min(n.max(1));
            if threads == 1 {
                for i in 0..n {
                    for j in 0..=i {
                        let v = f64::from(crate::matrix::dot(xc.row(i), xc.row(j))) / denom;
                        g[i * n + j] = v;
                        g[j * n + i] = v;
                    }
                }
            } else {
                let chunk = n.div_ceil(threads);
                let row_chunks: Vec<&mut [f64]> = g.chunks_mut(chunk * n).collect();
                std::thread::scope(|scope| {
                    for (t, rows) in row_chunks.into_iter().enumerate() {
                        let xc = &xc;
                        scope.spawn(move || {
                            for (off, row) in rows.chunks_mut(n).enumerate() {
                                let i = t * chunk + off;
                                for (j, slot) in row.iter_mut().enumerate().take(i + 1) {
                                    *slot =
                                        f64::from(crate::matrix::dot(xc.row(i), xc.row(j))) / denom;
                                }
                            }
                        });
                    }
                });
                // Mirror the lower triangle.
                for i in 0..n {
                    for j in (i + 1)..n {
                        g[i * n + j] = g[j * n + i];
                    }
                }
            }
            let eig = sym_eigen(&g, n);
            let keep = n_components.min(n);
            let mut comp = Matrix::zeros(keep, d);
            let mut kept = 0;
            for (lam, u) in eig.values.iter().zip(&eig.vectors) {
                if kept == keep {
                    break;
                }
                if *lam <= 1e-12 {
                    break; // null space — no principal axis to recover
                }
                // w = Xcᵀ u, normalized.
                let uf: Vec<f32> = u.iter().map(|&x| x as f32).collect();
                let mut w = xc.t_mat_vec(&uf);
                let norm: f32 = w.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > 0.0 {
                    for x in &mut w {
                        *x /= norm;
                    }
                }
                comp.row_mut(kept).copy_from_slice(&w);
                kept += 1;
            }
            let comp = truncate_rows(comp, kept, d);
            (eig.values, comp)
        } else {
            // Direct covariance: C = XcᵀXc / (n-1), d×d.
            let mut c = vec![0.0f64; d * d];
            for row in xc.iter_rows() {
                for i in 0..d {
                    let ri = f64::from(row[i]);
                    if ri == 0.0 {
                        continue;
                    }
                    for j in 0..=i {
                        c[i * d + j] += ri * f64::from(row[j]);
                    }
                }
            }
            for i in 0..d {
                for j in 0..=i {
                    let v = c[i * d + j] / denom;
                    c[i * d + j] = v;
                    c[j * d + i] = v;
                }
            }
            let eig = sym_eigen(&c, d);
            let keep = n_components.min(d);
            let mut comp = Matrix::zeros(keep, d);
            for k in 0..keep {
                for (j, &x) in eig.vectors[k].iter().enumerate() {
                    comp.set(k, j, x as f32);
                }
            }
            (eig.values, comp)
        };

        let spectrum: Vec<f64> = spectrum.into_iter().map(|v| v.max(0.0)).collect();
        let total_variance: f64 = spectrum.iter().sum();
        Pca {
            mean,
            components,
            spectrum,
            total_variance,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Input dimensionality.
    pub fn input_dims(&self) -> usize {
        self.components.cols()
    }

    /// Explained-variance ratio per spectral component (descending) — the
    /// series behind Figure 3.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.spectrum.len()];
        }
        self.spectrum
            .iter()
            .map(|v| v / self.total_variance)
            .collect()
    }

    /// Cumulative explained-variance ratio (the y-axis of Figure 3).
    pub fn cumulative_variance_ratio(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.explained_variance_ratio()
            .into_iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// Smallest number of components whose cumulative variance ratio
    /// reaches `target` (e.g. 0.8 as in the paper's MNIST example).
    pub fn components_for_variance(&self, target: f64) -> usize {
        for (i, c) in self.cumulative_variance_ratio().iter().enumerate() {
            if *c >= target {
                return i + 1;
            }
        }
        self.spectrum.len()
    }

    /// Projects a single sample onto the retained components.
    pub fn transform_row(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        let centered: Vec<f32> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        self.components.mat_vec(&centered)
    }

    /// Projects every row of `data`.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        self.transform_with_threads(data, 1)
    }

    /// Projects every row of `data` with `threads` workers.
    pub fn transform_with_threads(&self, data: &Matrix, threads: usize) -> Matrix {
        let n = data.rows();
        if n == 0 {
            return Matrix::zeros(0, self.n_components());
        }
        let threads = threads.max(1).min(n);
        if threads == 1 {
            let rows: Vec<Vec<f32>> = data.iter_rows().map(|r| self.transform_row(r)).collect();
            return Matrix::from_rows(&rows);
        }
        let nc = self.n_components();
        let mut out = Matrix::zeros(n, nc);
        let chunk = n.div_ceil(threads);
        // Split the output into per-thread row bands.
        let mut bands: Vec<&mut [f32]> = Vec::new();
        {
            let mut rest = out.as_mut_slice();
            while !rest.is_empty() {
                let take = (chunk * nc).min(rest.len());
                let (band, r) = rest.split_at_mut(take);
                bands.push(band);
                rest = r;
            }
        }
        std::thread::scope(|scope| {
            for (t, band) in bands.into_iter().enumerate() {
                scope.spawn(move || {
                    for (off, dst) in band.chunks_mut(nc).enumerate() {
                        let i = t * chunk + off;
                        dst.copy_from_slice(&self.transform_row(data.row(i)));
                    }
                });
            }
        });
        out
    }
}

/// A projection of raw *byte* values straight into PCA space, skipping the
/// intermediate bit-feature vector.
///
/// For a value with `s` set bits, projection costs `s × n_components`
/// additions instead of `dims × n_components` multiply-adds — a large win
/// for the sparse datasets (bags-of-words, access samples) and a constant
/// win in allocations for everything. The component matrix is stored
/// transposed (dims × n_components) so each set bit touches one contiguous
/// stripe.
#[derive(Debug, Clone)]
pub struct BitProjector {
    n_components: usize,
    input_bytes: usize,
    /// dims × n_components, row per bit-feature.
    transposed: Vec<f32>,
    /// `-Wᵀ·mean`, the constant term of `W(x - mean)` for 0/1 features.
    offset: Vec<f32>,
}

impl BitProjector {
    /// Number of output components.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Projects a raw byte value (must match the fitted dimensionality).
    pub fn project(&self, bytes: &[u8]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.n_components];
        self.project_into(bytes, &mut y);
        y
    }

    /// Projects a raw byte value into a caller-provided buffer — the
    /// allocation-free variant the store's per-shard scratch uses.
    ///
    /// # Panics
    /// Panics if `bytes` does not match the fitted dimensionality or
    /// `out.len() != self.n_components()`.
    pub fn project_into(&self, bytes: &[u8], out: &mut [f32]) {
        assert_eq!(bytes.len(), self.input_bytes, "dimension mismatch");
        assert_eq!(out.len(), self.n_components, "output buffer mismatch");
        let y = out;
        y.copy_from_slice(&self.offset);
        let nc = self.n_components;
        for (i, &b) in bytes.iter().enumerate() {
            let mut rest = b;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let row = &self.transposed[(i * 8 + bit) * nc..(i * 8 + bit + 1) * nc];
                for (o, w) in y.iter_mut().zip(row) {
                    *o += w;
                }
            }
        }
    }
}

impl Pca {
    /// Builds the byte-level fast projector for this basis. The input
    /// dimensionality must be a whole number of bytes (bit features).
    pub fn bit_projector(&self) -> BitProjector {
        let dims = self.components.cols();
        assert_eq!(dims % 8, 0, "bit projector needs byte-aligned features");
        let nc = self.components.rows();
        let mut transposed = vec![0.0f32; dims * nc];
        for c in 0..nc {
            for (j, &w) in self.components.row(c).iter().enumerate() {
                transposed[j * nc + c] = w;
            }
        }
        // offset[c] = -W[c]·mean
        let offset: Vec<f32> = (0..nc)
            .map(|c| -crate::matrix::dot(self.components.row(c), &self.mean))
            .collect();
        BitProjector {
            n_components: nc,
            input_bytes: dims / 8,
            transposed,
            offset,
        }
    }
}

fn truncate_rows(m: Matrix, rows: usize, cols: usize) -> Matrix {
    if m.rows() == rows {
        return m;
    }
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        out.row_mut(i).copy_from_slice(m.row(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data stretched along a known axis: y = 3x + noise.
    fn line_data(n: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(17);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let t: f32 = rng.gen::<f32>() * 10.0 - 5.0;
                vec![t, 3.0 * t + (rng.gen::<f32>() - 0.5) * 0.1]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_component_follows_dominant_axis() {
        let data = line_data(100);
        let pca = Pca::fit(&data, 1);
        let c = pca.components.row(0);
        // Direction ∝ (1, 3)/√10.
        let expected = (1.0f32 / 10.0f32.sqrt(), 3.0 / 10.0f32.sqrt());
        let (a, b) = (c[0].abs(), c[1].abs());
        assert!((a - expected.0).abs() < 0.02, "{c:?}");
        assert!((b - expected.1).abs() < 0.02, "{c:?}");
    }

    #[test]
    fn variance_ratio_concentrates_on_line() {
        let data = line_data(100);
        let pca = Pca::fit(&data, 2);
        let r = pca.explained_variance_ratio();
        assert!(r[0] > 0.99, "{r:?}");
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(pca.components_for_variance(0.8), 1);
    }

    #[test]
    fn gram_and_covariance_paths_agree() {
        // n < d triggers the Gram path; duplicate features give a known
        // answer either way. Compare projections from both paths.
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|i| {
                let t = i as f32;
                vec![t, 2.0 * t, -t]
            })
            .collect();
        let data = Matrix::from_rows(&rows); // n=5 > d=3 -> covariance path
        let small = data.select_rows(&[0, 1]); // n=2 < d=3 -> Gram path
        let p1 = Pca::fit(&data, 1);
        let p2 = Pca::fit(&small, 1);
        // Both must find the same 1-D subspace (up to sign).
        let a = p1.components.row(0);
        let b = p2.components.row(0);
        let dotab: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        assert!(dotab.abs() > 0.999, "a={a:?} b={b:?}");
    }

    #[test]
    fn transform_reduces_dimensions() {
        let data = line_data(50);
        let pca = Pca::fit(&data, 1);
        let t = pca.transform(&data);
        assert_eq!(t.rows(), 50);
        assert_eq!(t.cols(), 1);
        // Projection preserves the dominant variance: spread along the
        // component is comparable to the original spread.
        let var: f32 = {
            let mean = t.col_mean()[0];
            t.iter_rows().map(|r| (r[0] - mean).powi(2)).sum::<f32>() / 49.0
        };
        assert!(var > 1.0);
    }

    #[test]
    fn cumulative_is_monotone_to_one() {
        let data = line_data(30);
        let pca = Pca::fit(&data, 2);
        let cum = pca.cumulative_variance_ratio();
        for w in cum.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((cum.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_data_safe() {
        let pca = Pca::fit(&Matrix::zeros(0, 4), 2);
        assert_eq!(pca.n_components(), 0);
        assert!(pca.explained_variance_ratio().is_empty());
    }

    #[test]
    fn constant_data_has_zero_variance() {
        let data = Matrix::from_rows(&vec![vec![5.0f32, 5.0]; 10]);
        let pca = Pca::fit(&data, 2);
        assert!(pca.total_variance.abs() < 1e-9);
    }

    #[test]
    fn bit_projector_matches_transform_row() {
        use crate::featurize::{bits_to_features, featurize_values};
        let values: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i, i.wrapping_mul(3), 0x0F, i]).collect();
        let data = featurize_values(&values);
        let pca = Pca::fit(&data, 3);
        let proj = pca.bit_projector();
        for v in &values {
            let slow = pca.transform_row(&bits_to_features(v));
            let fast = proj.project(v);
            assert_eq!(slow.len(), fast.len());
            for (a, b) in slow.iter().zip(&fast) {
                assert!((a - b).abs() < 1e-3, "{slow:?} vs {fast:?}");
            }
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|_| (0..6).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 3);
        for i in 0..3 {
            for j in 0..3 {
                let d: f32 = pca
                    .components
                    .row(i)
                    .iter()
                    .zip(pca.components.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-3, "({i},{j}) dot={d}");
            }
        }
    }
}
