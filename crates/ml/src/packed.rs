//! Bit-domain K-means prediction: packed LUT distances over raw bytes.
//!
//! The float prediction path expands a value into one `f32` per bit (a 64 B
//! value becomes a 512-float heap allocation) and then runs a dense K×d
//! scan. But the inputs are always 0/1, and for a 0/1 vector `x` and a
//! fractional centroid `c` the squared Euclidean distance factors exactly:
//!
//! ```text
//! ‖x − c‖² = Σⱼ (xⱼ − cⱼ)²
//!          = Σⱼ cⱼ² + Σⱼ xⱼ² − 2 Σⱼ cⱼ xⱼ      (xⱼ² = xⱼ for bits)
//!          = ‖c‖² + popcount(x) − 2 ⟨c, x⟩
//! ```
//!
//! `‖c‖²` is a per-centroid constant, `popcount(x)` is a handful of `u64`
//! popcounts, and `⟨c, x⟩` decomposes over byte positions: for byte value
//! `b` at position `p`, the partial dot product `Σ_{bit i ∈ b} c[8p + i]`
//! takes one 256-entry table lookup. Prediction therefore costs
//! `value_len` lookups and adds per centroid — **zero featurization, zero
//! allocation** — instead of `8 × value_len` multiply-subtract-adds plus a
//! heap-allocated feature vector.
//!
//! The tables are rebuilt once per (re)train/model-swap, never per
//! operation. They are stored centroid-interleaved
//! (`lut[(pos·256 + byte)·k + c]`) so one lookup row holds all K partial
//! dot products for a byte contiguously: the scan walks the value once,
//! touching one K-float stripe per byte.

use crate::matrix::Matrix;

/// A K-means predictor specialized to 0/1 (bit-feature) inputs, operating
/// directly on the raw value bytes via packed lookup tables.
///
/// Built from a fitted model's centroids with
/// [`PackedPredictor::from_centroids`]; reproduces the float path's
/// squared distances up to f32 rounding (the summation order differs, so
/// results agree to ulp-level tolerance, not bit-for-bit).
#[derive(Debug, Clone)]
pub struct PackedPredictor {
    k: usize,
    input_bytes: usize,
    /// Centroid-interleaved partial dot products:
    /// `lut[(pos * 256 + byte) * k + c] = Σ_{bit i set in byte} centroid_c[pos*8 + i]`.
    lut: Vec<f32>,
    /// `norms[c] = ‖centroid_c‖²`.
    norms: Vec<f32>,
}

impl PackedPredictor {
    /// Builds the LUTs for a centroid matrix over bit features.
    ///
    /// # Panics
    /// Panics if the feature dimensionality is not a whole number of bytes
    /// (bit-feature models always are; PCA-space models must keep the
    /// float path).
    pub fn from_centroids(centroids: &Matrix) -> Self {
        let dims = centroids.cols();
        assert!(
            dims.is_multiple_of(8),
            "packed predictor needs byte-aligned bit features, got {dims} dims"
        );
        let k = centroids.rows();
        let input_bytes = dims / 8;
        let mut lut = vec![0.0f32; input_bytes * 256 * k];
        for (c, row) in centroids.iter_rows().enumerate() {
            for pos in 0..input_bytes {
                let w = &row[pos * 8..pos * 8 + 8];
                // Subset-sum DP over byte values: clearing the lowest set
                // bit of `b` gives an already-computed prefix, so each of
                // the 256 entries costs one add.
                for b in 1usize..256 {
                    let low = b.trailing_zeros() as usize;
                    let prev = lut[(pos * 256 + (b & (b - 1))) * k + c];
                    lut[(pos * 256 + b) * k + c] = prev + w[low];
                }
            }
        }
        let norms = centroids
            .iter_rows()
            .map(|row| row.iter().map(|&v| v * v).sum())
            .collect();
        PackedPredictor {
            k,
            input_bytes,
            lut,
            norms,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Expected input length in bytes.
    pub fn input_bytes(&self) -> usize {
        self.input_bytes
    }

    /// Approximate DRAM held by the lookup tables, in bytes.
    pub fn table_bytes(&self) -> usize {
        (self.lut.len() + self.norms.len()) * std::mem::size_of::<f32>()
    }

    /// Computes the squared distance from `bytes` (as a bit vector) to
    /// every centroid into `out`, returning the argmin cluster. Performs no
    /// allocation.
    ///
    /// Dispatches to the AVX2 LUT-gather kernel when the CPU supports it
    /// (see [`crate::simd::simd_active`]); the result is **bit-for-bit**
    /// identical to [`PackedPredictor::distances_into_scalar`] either way —
    /// each centroid's f32 accumulation runs in the same byte-position
    /// order in both kernels.
    ///
    /// # Panics
    /// Panics if `bytes.len() != input_bytes` or `out.len() != k`.
    pub fn distances_into(&self, bytes: &[u8], out: &mut [f32]) -> usize {
        assert_eq!(bytes.len(), self.input_bytes, "value length mismatch");
        assert_eq!(out.len(), self.k, "distance buffer length mismatch");
        // Accumulate ⟨c, x⟩ for all centroids in one pass over the bytes.
        out.fill(0.0);
        crate::simd::lut_accumulate(&self.lut, self.k, bytes, out);
        self.finalize(popcount_bytes(bytes) as f32, out)
    }

    /// Scalar reference for [`PackedPredictor::distances_into`]: identical
    /// semantics and results, never uses SIMD. Kept public as the
    /// equivalence baseline for tests and the benchmark's scalar column.
    ///
    /// # Panics
    /// Panics if `bytes.len() != input_bytes` or `out.len() != k`.
    pub fn distances_into_scalar(&self, bytes: &[u8], out: &mut [f32]) -> usize {
        assert_eq!(bytes.len(), self.input_bytes, "value length mismatch");
        assert_eq!(out.len(), self.k, "distance buffer length mismatch");
        out.fill(0.0);
        crate::simd::lut_accumulate_scalar(&self.lut, self.k, bytes, out);
        self.finalize(popcount_bytes(bytes) as f32, out)
    }

    /// [`PackedPredictor::distances_into`] over a row of little-endian `u64`
    /// words (the [`crate::packedmatrix::PackedMatrix`] layout) with the
    /// row's popcount supplied by the caller — the training kernel computes
    /// it once per sample and reuses it every iteration.
    ///
    /// # Panics
    /// Panics if `words` is not exactly the packed form of an
    /// `input_bytes`-byte value or `out.len() != k`.
    pub fn distances_from_words(&self, words: &[u64], pop: u32, out: &mut [f32]) -> usize {
        assert_eq!(
            words.len(),
            self.input_bytes.div_ceil(8),
            "packed row length mismatch"
        );
        assert_eq!(out.len(), self.k, "distance buffer length mismatch");
        out.fill(0.0);
        #[cfg(target_endian = "little")]
        {
            // On little-endian targets the packed words *are* the byte
            // stream, so the training kernel shares the SIMD LUT-gather
            // with the prediction path.
            // SAFETY: `words` holds at least `input_bytes` bytes (asserted
            // above) and u8 has no alignment requirement.
            let bytes = unsafe {
                std::slice::from_raw_parts(words.as_ptr() as *const u8, self.input_bytes)
            };
            crate::simd::lut_accumulate(&self.lut, self.k, bytes, out);
        }
        #[cfg(not(target_endian = "little"))]
        {
            let k = self.k;
            let mut pos = 0usize;
            'words: for &w in words {
                for b in w.to_le_bytes() {
                    if pos == self.input_bytes {
                        break 'words;
                    }
                    let row = &self.lut[(pos * 256 + b as usize) * k..][..k];
                    for (acc, &x) in out.iter_mut().zip(row) {
                        *acc += x;
                    }
                    pos += 1;
                }
            }
        }
        self.finalize(pop as f32, out)
    }

    /// Turns accumulated partial dot products into squared distances via
    /// `‖c‖² + popcount(x) − 2⟨c,x⟩`, returning the argmin cluster.
    fn finalize(&self, pop: f32, out: &mut [f32]) -> usize {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, d) in out.iter_mut().enumerate() {
            *d = self.norms[c] + pop - 2.0 * *d;
            if *d < best_d {
                best_d = *d;
                best = c;
            }
        }
        best
    }

    /// Convenience argmin predictor (allocates a distance buffer; the hot
    /// path uses [`PackedPredictor::distances_into`] with caller scratch).
    pub fn predict(&self, bytes: &[u8]) -> usize {
        let mut dist = vec![0.0f32; self.k];
        self.distances_into(bytes, &mut dist)
    }
}

/// Population count of a byte slice, eight bytes per `popcnt`
/// (the byte tail folded into one padded word). Dispatches to the
/// hardware-popcnt kernel in [`crate::simd`] when available.
#[inline]
pub fn popcount_bytes(bytes: &[u8]) -> u64 {
    crate::simd::popcount_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{bits_to_features, featurize_values};
    use crate::kmeans::{KMeans, KMeansConfig};
    use crate::matrix::sq_dist;

    fn trained_model(values: &[Vec<u8>], k: usize) -> KMeans {
        let data = featurize_values(values);
        KMeans::fit(&data, &KMeansConfig::new(k).with_seed(11))
    }

    #[test]
    fn popcount_matches_naive() {
        for len in [0usize, 1, 7, 8, 9, 64, 65] {
            let v: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let naive: u64 = v.iter().map(|b| b.count_ones() as u64).sum();
            assert_eq!(popcount_bytes(&v), naive, "len={len}");
        }
    }

    #[test]
    fn distances_match_float_path() {
        let values: Vec<Vec<u8>> = (0..40u8)
            .map(|i| vec![i.wrapping_mul(13), !i, 0xA5, i])
            .collect();
        let model = trained_model(&values, 4);
        let packed = PackedPredictor::from_centroids(model.centroids());
        let mut dist = vec![0.0f32; 4];
        for v in &values {
            packed.distances_into(v, &mut dist);
            let f = bits_to_features(v);
            for (c, &d) in dist.iter().enumerate() {
                let reference = sq_dist(model.centroid(c), &f);
                assert!(
                    (d - reference).abs() <= 1e-3 * (1.0 + reference),
                    "cluster {c}: packed {d} vs float {reference}"
                );
            }
        }
    }

    #[test]
    fn argmin_matches_float_predict() {
        let mut values = Vec::new();
        for i in 0..30u8 {
            values.push(vec![0x00, 0x00, i % 2, 0x00]);
            values.push(vec![0xFF, 0xFF, 0xF0 | (i % 2), 0xFF]);
        }
        let model = trained_model(&values, 2);
        let packed = PackedPredictor::from_centroids(model.centroids());
        for v in &values {
            assert_eq!(packed.predict(v), model.predict(&bits_to_features(v)));
        }
    }

    #[test]
    fn exact_on_bit_centroids() {
        // Centroids that are themselves 0/1 vectors give integer distances:
        // the packed identity reduces to the Hamming distance, exactly.
        let rows = vec![
            bits_to_features(&[0x0Fu8, 0x00]),
            bits_to_features(&[0xF0u8, 0xFF]),
        ];
        let m = Matrix::from_rows(&rows);
        let packed = PackedPredictor::from_centroids(&m);
        let mut dist = vec![0.0f32; 2];
        packed.distances_into(&[0x0F, 0x01], &mut dist);
        assert_eq!(dist[0], 1.0); // one bit away from centroid 0
        assert_eq!(dist[1], 15.0); // 12 + 5 − 2·(1 shared bit)
    }

    #[test]
    fn single_cluster_zero_centroid_counts_bits() {
        let packed = PackedPredictor::from_centroids(&Matrix::zeros(1, 32));
        let mut d = [0.0f32];
        assert_eq!(packed.distances_into(&[0xFF, 0x01, 0x00, 0x80], &mut d), 0);
        assert_eq!(d[0], 10.0);
    }

    #[test]
    #[should_panic(expected = "byte-aligned")]
    fn rejects_non_byte_dims() {
        PackedPredictor::from_centroids(&Matrix::zeros(2, 12));
    }

    #[test]
    #[should_panic(expected = "value length mismatch")]
    fn rejects_wrong_value_len() {
        let p = PackedPredictor::from_centroids(&Matrix::zeros(1, 16));
        p.predict(&[0u8; 3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::featurize::{bits_to_features, featurize_values};
    use crate::kmeans::{KMeans, KMeansConfig};
    use crate::matrix::sq_dist;
    use proptest::prelude::*;

    proptest! {
        /// The packed kernel reproduces the reference float path on random
        /// training sets and probe values: distances within f32 tolerance,
        /// and an identical argmin whenever the float path's best-vs-second
        /// margin exceeds that tolerance (near-ties may legitimately
        /// resolve either way under reordered f32 summation).
        #[test]
        fn packed_matches_float_reference(
            seed in 0u64..1000,
            value_bytes in 1usize..24,
            k in 1usize..8,
            n in 8usize..40,
        ) {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let values: Vec<Vec<u8>> = (0..n)
                .map(|_| (0..value_bytes).map(|_| next() as u8).collect())
                .collect();
            let data = featurize_values(&values);
            let model = KMeans::fit(&data, &KMeansConfig::new(k).with_seed(seed));
            let packed = PackedPredictor::from_centroids(model.centroids());
            let mut dist = vec![0.0f32; model.k()];

            for v in values.iter().take(8) {
                let argmin = packed.distances_into(v, &mut dist);
                let f = bits_to_features(v);
                let mut float_d: Vec<f32> = (0..model.k())
                    .map(|c| sq_dist(model.centroid(c), &f))
                    .collect();
                for (c, (&p, &fl)) in dist.iter().zip(&float_d).enumerate() {
                    prop_assert!(
                        (p - fl).abs() <= 1e-3 * (1.0 + fl),
                        "cluster {}: packed {} vs float {}", c, p, fl
                    );
                }
                let float_best = model.predict(&f);
                float_d.sort_by(f32::total_cmp);
                let margin = if float_d.len() > 1 { float_d[1] - float_d[0] } else { f32::INFINITY };
                if margin > 1e-3 * (1.0 + float_d[0]) {
                    prop_assert_eq!(argmin, float_best);
                }
            }
        }

        /// The SIMD-dispatched kernel and the scalar reference agree
        /// **bit-for-bit** on random value widths (including byte counts
        /// that are not a multiple of 8, exercising the u64-word tail) and
        /// random cluster counts (crossing every SIMD dispatch width and
        /// the off-path fallbacks).
        #[test]
        fn simd_matches_scalar_bit_for_bit(
            seed in 0u64..5000,
            value_bytes in 1usize..40,
            k in 1usize..70,
        ) {
            let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            // A synthetic centroid matrix is enough: equivalence is a
            // kernel property, independent of how centroids were fit.
            let rows: Vec<Vec<f32>> = (0..k)
                .map(|_| {
                    (0..value_bytes * 8)
                        .map(|_| (next() % 1000) as f32 / 1000.0)
                        .collect()
                })
                .collect();
            let m = Matrix::from_rows(&rows);
            let packed = PackedPredictor::from_centroids(&m);
            let value: Vec<u8> = (0..value_bytes).map(|_| next() as u8).collect();

            let mut d_simd = vec![0.0f32; k];
            let mut d_scalar = vec![0.0f32; k];
            let a_simd = packed.distances_into(&value, &mut d_simd);
            let a_scalar = packed.distances_into_scalar(&value, &mut d_scalar);
            prop_assert_eq!(a_simd, a_scalar);
            for (c, (&s, &r)) in d_simd.iter().zip(&d_scalar).enumerate() {
                prop_assert_eq!(s.to_bits(), r.to_bits(), "cluster {}", c);
            }

            // The training-side word kernel must match too (tail words are
            // zero-padded, so positions past input_bytes contribute 0).
            let words_per_row = value_bytes.div_ceil(8);
            let mut words = vec![0u64; words_per_row];
            for (i, chunk) in value.chunks(8).enumerate() {
                let mut pad = [0u8; 8];
                pad[..chunk.len()].copy_from_slice(chunk);
                words[i] = u64::from_le_bytes(pad);
            }
            let pop = popcount_bytes(&value) as u32;
            let mut d_words = vec![0.0f32; k];
            let a_words = packed.distances_from_words(&words, pop, &mut d_words);
            prop_assert_eq!(a_words, a_scalar);
            for (c, (&s, &r)) in d_words.iter().zip(&d_scalar).enumerate() {
                prop_assert_eq!(s.to_bits(), r.to_bits(), "cluster {}", c);
            }
        }
    }
}
