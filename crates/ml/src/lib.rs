//! # pnw-ml — the machine-learning substrate of PNW
//!
//! The paper steers NVM writes with an unsupervised model (§V-A.1): K-means
//! clustering over the bit patterns of stored values, PCA to tame the curse
//! of dimensionality for large values, and the elbow method to pick the
//! number of clusters. The original evaluation uses scikit-learn; this crate
//! reimplements the same algorithms in pure Rust:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ initialization,
//!   empty-cluster repair and multicore assignment (Figure 11 compares 1- vs
//!   4-core training time), plus a mini-batch variant for cheap background
//!   retraining.
//! * [`pca`] — principal component analysis via a symmetric eigensolver
//!   (Householder tridiagonalization + implicit-shift QL), reporting the
//!   explained-variance-ratio curve of Figure 3.
//! * [`elbow`] — SSE-vs-K curves and knee detection (Figure 4).
//! * [`featurize`] — the bit-per-dimension encoding of §V-A.1: *"each memory
//!   location is encoded as a vector of bits, each of which is used as a
//!   feature/dimension"*.
//! * [`packed`] — the bit-domain prediction kernel: per-centroid packed
//!   lookup tables turn `‖x−c‖²` into `‖c‖² + popcount(x) − 2⟨c,x⟩`, so the
//!   PUT hot path predicts straight from the raw bytes with zero
//!   featurization and zero allocation.
//! * [`packedmatrix`] — the same identity on the *training* side: a
//!   samples × bits set stored as `u64` words, fit without ever expanding
//!   to the 32× larger float tensor (per-iteration byte LUTs for the
//!   assignment step, integer bit-count accumulators for the centroid
//!   update). [`kmeans::TrainSet`] is the seam: both `KMeans::fit_set` and
//!   `MiniBatchKMeans::fit_set` accept either representation.
//! * [`matrix`] / [`linalg`] — the minimal dense-matrix layer underneath.
//!
//! ```
//! use pnw_ml::kmeans::{KMeans, KMeansConfig};
//! use pnw_ml::matrix::Matrix;
//!
//! // Cluster the 6-entry example PCM of the paper's Table II.
//! let rows: Vec<Vec<f32>> = [
//!     [0., 0., 0., 0., 0., 1., 1., 1.],
//!     [0., 0., 0., 0., 1., 0., 1., 1.],
//!     [0., 0., 1., 0., 1., 1., 0., 0.],
//!     [0., 0., 1., 1., 1., 1., 0., 0.],
//!     [1., 1., 0., 1., 0., 0., 0., 0.],
//!     [0., 1., 1., 1., 0., 0., 0., 0.],
//! ].iter().map(|r| r.to_vec()).collect();
//! let data = Matrix::from_rows(&rows);
//! let model = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(42));
//! let labels = model.labels(&data);
//! // Indexes {0,1}, {2,3}, {4,5} land in three distinct clusters.
//! assert_eq!(labels[0], labels[1]);
//! assert_eq!(labels[2], labels[3]);
//! assert_eq!(labels[4], labels[5]);
//! assert_ne!(labels[0], labels[2]);
//! assert_ne!(labels[2], labels[4]);
//! ```

#![warn(missing_docs)]

pub mod elbow;
pub mod featurize;
pub mod kmeans;
pub mod linalg;
pub mod matrix;
pub mod minibatch;
pub mod packed;
pub mod packedmatrix;
pub mod pca;
pub mod simd;

pub use elbow::{elbow_point, sse_curve};
pub use featurize::{bits_to_features, features_to_bits};
pub use kmeans::{KMeans, KMeansConfig, TrainSet};
pub use matrix::Matrix;
pub use minibatch::MiniBatchKMeans;
pub use packed::PackedPredictor;
pub use packedmatrix::PackedMatrix;
pub use pca::Pca;
