//! A minimal row-major dense matrix.
//!
//! Sized for this workload: training sets are (samples × bit-features)
//! tensors — §V-A.1's "2D tensor of shape (n, m)" — with `m` up to a few
//! thousand after PCA. No BLAS; the hot loops are simple enough that LLVM
//! autovectorizes them.

/// Row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices (all must share one length).
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.as_ref().len(), cols, "ragged rows");
            data.extend_from_slice(r.as_ref());
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows (samples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// The flat backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Column-wise mean vector (length = `cols`). Zero vector when empty.
    pub fn col_mean(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.cols];
        if self.rows == 0 {
            return mean;
        }
        for row in self.iter_rows() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += *v;
            }
        }
        let n = self.rows as f32;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }

    /// Returns a copy with `mean` subtracted from every row.
    pub fn centered(&self, mean: &[f32]) -> Matrix {
        assert_eq!(mean.len(), self.cols);
        let mut out = self.clone();
        for i in 0..out.rows {
            for (v, m) in out.row_mut(i).iter_mut().zip(mean) {
                *v -= *m;
            }
        }
        out
    }

    /// Selects a subset of rows by index.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (dst, &src) in idx.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// `self * v` for a vector `v` of length `cols`.
    pub fn mat_vec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols);
        self.iter_rows()
            .map(|row| dot(row, v))
            .collect()
    }

    /// `selfᵀ * v` for a vector `v` of length `rows`.
    pub fn t_mat_vec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.rows);
        let mut out = vec![0.0f32; self.cols];
        for (row, &s) in self.iter_rows().zip(v) {
            if s != 0.0 {
                for (o, x) in out.iter_mut().zip(row) {
                    *o += s * x;
                }
            }
        }
        out
    }
}

/// Dot product of two equal-length slices.
///
/// Eight independent accumulators: a naive `zip().map().sum()` forms one
/// serial dependency chain (f32 addition is not associative, so LLVM cannot
/// vectorize it), which made model prediction on large values ~8× slower.
/// The explicit lanes give LLVM reassociation it is allowed to exploit.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for i in 0..8 {
            acc[i] += xa[i] * xb[i];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    acc.iter().sum::<f32>() + tail
}

/// Squared Euclidean (L2²) distance — the K-means objective's kernel
/// (paper Eq. 1 uses the L2 norm). Multi-accumulator for the same reason as
/// [`dot`].
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for i in 0..8 {
            let d = xa[i] - xb[i];
            acc[i] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    acc.iter().sum::<f32>() + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.get(0, 2), 3.0);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0f32, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0f32], vec![1.0, 2.0]]);
    }

    #[test]
    fn col_mean_and_centering() {
        let m = Matrix::from_rows(&[vec![1.0f32, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.col_mean(), vec![2.0, 20.0]);
        let c = m.centered(&m.col_mean());
        assert_eq!(c.row(0), &[-1.0, -10.0]);
        assert_eq!(c.col_mean(), vec![0.0, 0.0]);
    }

    #[test]
    fn mat_vec_and_transpose() {
        let m = Matrix::from_rows(&[vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.t_mat_vec(&[1.0, 0.0, 1.0]), vec![6.0, 8.0]);
    }

    #[test]
    fn select_rows_copies() {
        let m = Matrix::from_rows(&[vec![1.0f32], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn distance_kernels() {
        assert_eq!(dot(&[1., 2.], &[3., 4.]), 11.0);
        assert_eq!(sq_dist(&[0., 0.], &[3., 4.]), 25.0);
        assert_eq!(sq_dist(&[1., 1.], &[1., 1.]), 0.0);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(m.col_mean(), Vec::<f32>::new());
        assert_eq!(m.iter_rows().count(), 0);
    }
}
