//! Bit-vector featurization (§V-A.1).
//!
//! *"In our system, each memory location is encoded as a vector of bits,
//! each of which is used as a feature/dimension."* These helpers map between
//! byte buffers and that representation. On 0/1 features, squared Euclidean
//! distance equals Hamming distance, so K-means on this encoding clusters by
//! exactly the quantity PNW wants to minimize.

use crate::matrix::Matrix;

/// Expands a byte buffer into one `f32` feature per bit (LSB-first within
/// each byte).
pub fn bits_to_features(bytes: &[u8]) -> Vec<f32> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for bit in 0..8 {
            out.push(f32::from(b >> bit & 1));
        }
    }
    out
}

/// Writes a byte buffer's bits into a pre-allocated feature slice.
///
/// # Panics
/// Panics if `out.len() != bytes.len() * 8`.
pub fn bits_into_features(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(out.len(), bytes.len() * 8);
    for (i, &b) in bytes.iter().enumerate() {
        for bit in 0..8 {
            out[i * 8 + bit] = f32::from(b >> bit & 1);
        }
    }
}

/// Collapses features back into bytes, thresholding at 0.5 (used to
/// materialize cluster centroids as representative bit patterns).
pub fn features_to_bits(features: &[f32]) -> Vec<u8> {
    let mut out = vec![0u8; features.len().div_ceil(8)];
    for (i, &f) in features.iter().enumerate() {
        if f >= 0.5 {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Featurizes a set of equal-length byte values into a samples × bits
/// matrix — the 2D training tensor of §V-A.1.
pub fn featurize_values<V: AsRef<[u8]>>(values: &[V]) -> Matrix {
    if values.is_empty() {
        return Matrix::zeros(0, 0);
    }
    let bits = values[0].as_ref().len() * 8;
    let mut m = Matrix::zeros(values.len(), bits);
    for (i, v) in values.iter().enumerate() {
        assert_eq!(v.as_ref().len() * 8, bits, "values must share one length");
        bits_into_features(v.as_ref(), m.row_mut(i));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::sq_dist;
    use pnw_nvm_sim_hamming::hamming;

    /// Local copy of the Hamming kernel so this crate stays dependency-free;
    /// semantics must match `pnw_nvm_sim::device::hamming` (checked in the
    /// integration suite).
    mod pnw_nvm_sim_hamming {
        pub fn hamming(a: &[u8], b: &[u8]) -> u64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x ^ y).count_ones() as u64)
                .sum()
        }
    }

    #[test]
    fn roundtrip() {
        let v = [0xA5u8, 0x00, 0xFF, 0x3C];
        assert_eq!(features_to_bits(&bits_to_features(&v)), v);
    }

    #[test]
    fn bit_order_is_lsb_first() {
        let f = bits_to_features(&[0b0000_0001]);
        assert_eq!(f[0], 1.0);
        assert!(f[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sq_dist_equals_hamming_on_bits() {
        let a = [0b1010_1100u8, 0x42];
        let b = [0b0110_1001u8, 0x24];
        let fa = bits_to_features(&a);
        let fb = bits_to_features(&b);
        assert_eq!(sq_dist(&fa, &fb) as u64, hamming(&a, &b));
    }

    #[test]
    fn featurize_values_shape() {
        let m = featurize_values(&[[1u8, 2], [3, 4]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 16);
    }

    #[test]
    fn featurize_empty() {
        let m = featurize_values::<&[u8]>(&[]);
        assert_eq!(m.rows(), 0);
    }

    #[test]
    fn centroid_thresholding() {
        // Fractional centroid rounds to the majority bit.
        let c = [0.9f32, 0.1, 0.5, 0.49];
        assert_eq!(features_to_bits(&c), vec![0b0000_0101]);
    }
}
