//! Vectorized inner kernels for the packed bit-domain paths.
//!
//! Two kernels dominate prediction and training: the LUT-gather
//! accumulation of [`crate::packed::PackedPredictor`] (one K-float stripe
//! add per value byte) and `u64` popcounts. Both are vectorized here with
//! `std::arch::x86_64` intrinsics behind **runtime** feature detection —
//! the workspace stays dependency-free and portable, and every dispatch
//! falls back to the scalar reference on non-x86 targets or older CPUs.
//!
//! **Bit-for-bit contract:** the SIMD LUT kernels accumulate each
//! centroid's partial dot product in exactly the same byte-position order
//! as the scalar reference (each centroid lane is an independent chain of
//! f32 adds over positions 0..n). f32 addition per lane is therefore the
//! *same* sequence of operations, so SIMD and scalar results are identical
//! to the last bit — property-tested in [`crate::packed`]. Popcounts are
//! integer and exact by construction.

/// Whether the vectorized (AVX2) LUT kernels are active on this CPU.
/// `false` means every call takes the scalar reference path.
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar reference for the LUT-gather accumulation: for each byte of
/// `bytes`, adds the K-float LUT stripe for that (position, byte) pair
/// into `out`. `out` must be zeroed (or hold a running sum) on entry.
#[inline(always)]
pub(crate) fn lut_accumulate_scalar(lut: &[f32], k: usize, bytes: &[u8], out: &mut [f32]) {
    for (pos, &b) in bytes.iter().enumerate() {
        let row = &lut[(pos * 256 + b as usize) * k..][..k];
        for (acc, &w) in out.iter_mut().zip(row) {
            *acc += w;
        }
    }
}

/// LUT-gather accumulation with runtime SIMD dispatch. Semantically (and
/// bit-for-bit) identical to [`lut_accumulate_scalar`].
///
/// `lut` must hold at least `(bytes.len() * 256) * k` floats and
/// `out.len()` must equal `k` (guaranteed by the callers' asserts).
#[inline]
pub(crate) fn lut_accumulate(lut: &[f32], k: usize, bytes: &[u8], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            debug_assert_eq!(out.len(), k);
            debug_assert!(lut.len() >= bytes.len() * 256 * k);
            // SAFETY: AVX2 confirmed at runtime; slice bounds checked above
            // (callers assert them in release builds too).
            unsafe {
                match k {
                    4 => return lut_accumulate_sse_k4(lut, bytes, out),
                    8 => return lut_accumulate_avx2::<1>(lut, k, bytes, out),
                    16 => return lut_accumulate_avx2::<2>(lut, k, bytes, out),
                    24 => return lut_accumulate_avx2::<3>(lut, k, bytes, out),
                    32 => return lut_accumulate_avx2::<4>(lut, k, bytes, out),
                    64 => return lut_accumulate_avx2::<8>(lut, k, bytes, out),
                    _ => {}
                }
            }
        }
    }
    lut_accumulate_scalar(lut, k, bytes, out);
}

/// K = 4 specialization: one 128-bit lane holds the whole stripe, so each
/// byte costs one load + one add. SSE2 is baseline on x86_64.
///
/// # Safety
/// `lut` must hold `bytes.len() * 256 * 4` floats; `out.len() == 4`.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn lut_accumulate_sse_k4(lut: &[f32], bytes: &[u8], out: &mut [f32]) {
    use std::arch::x86_64::*;
    unsafe {
        let base = lut.as_ptr();
        let mut acc = _mm_loadu_ps(out.as_ptr());
        for (pos, &b) in bytes.iter().enumerate() {
            let row = base.add((pos * 256 + b as usize) * 4);
            acc = _mm_add_ps(acc, _mm_loadu_ps(row));
        }
        _mm_storeu_ps(out.as_mut_ptr(), acc);
    }
}

/// Generic AVX2 kernel for `k = 8 * N`: N 256-bit accumulators, each lane
/// a per-centroid chain of adds in byte-position order (same order as the
/// scalar reference, hence bit-identical).
///
/// # Safety
/// Caller must verify AVX2 at runtime; `lut` must hold
/// `bytes.len() * 256 * k` floats; `out.len() == k == 8 * N`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lut_accumulate_avx2<const N: usize>(lut: &[f32], k: usize, bytes: &[u8], out: &mut [f32]) {
    use std::arch::x86_64::*;
    unsafe {
        let base = lut.as_ptr();
        let mut acc = [_mm256_setzero_ps(); N];
        for (i, a) in acc.iter_mut().enumerate() {
            *a = _mm256_loadu_ps(out.as_ptr().add(i * 8));
        }
        for (pos, &b) in bytes.iter().enumerate() {
            let row = base.add((pos * 256 + b as usize) * k);
            for (i, a) in acc.iter_mut().enumerate() {
                *a = _mm256_add_ps(*a, _mm256_loadu_ps(row.add(i * 8)));
            }
        }
        for (i, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(out.as_mut_ptr().add(i * 8), *a);
        }
    }
}

#[inline(always)]
fn popcount_words_impl(words: &[u64]) -> u64 {
    // u64×8 unrolled with four independent accumulators: breaks the add
    // dependency chain so the popcounts pipeline.
    let mut c = [0u64; 4];
    let mut chunks = words.chunks_exact(8);
    for ch in &mut chunks {
        c[0] += (ch[0].count_ones() + ch[1].count_ones()) as u64;
        c[1] += (ch[2].count_ones() + ch[3].count_ones()) as u64;
        c[2] += (ch[4].count_ones() + ch[5].count_ones()) as u64;
        c[3] += (ch[6].count_ones() + ch[7].count_ones()) as u64;
    }
    let mut total = c[0] + c[1] + c[2] + c[3];
    for &w in chunks.remainder() {
        total += w.count_ones() as u64;
    }
    total
}

/// Popcount-instruction variant: `count_ones` lowers to a real `popcnt`
/// only when the feature is enabled for the function body.
///
/// # Safety
/// Caller must verify `popcnt` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn popcount_words_popcnt(words: &[u64]) -> u64 {
    popcount_words_impl(words)
}

/// Total population count of a `u64` slice (exact; u64×8 unrolled, with a
/// hardware-`popcnt` path selected at runtime on x86_64).
#[inline]
pub fn popcount_words(words: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: feature checked the line above.
            return unsafe { popcount_words_popcnt(words) };
        }
    }
    popcount_words_impl(words)
}

#[inline(always)]
fn popcount_bytes_impl(bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    let mut total = 0u64;
    for c in &mut chunks {
        total += u64::from_le_bytes(c.try_into().unwrap()).count_ones() as u64;
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut pad = [0u8; 8];
        pad[..rest.len()].copy_from_slice(rest);
        total += u64::from_le_bytes(pad).count_ones() as u64;
    }
    total
}

/// Popcount-instruction variant of the byte kernel.
///
/// # Safety
/// Caller must verify `popcnt` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn popcount_bytes_popcnt(bytes: &[u8]) -> u64 {
    popcount_bytes_impl(bytes)
}

/// Total population count of a byte slice (exact; eight bytes per word,
/// hardware `popcnt` selected at runtime on x86_64).
#[inline]
pub fn popcount_bytes(bytes: &[u8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: feature checked the line above.
            return unsafe { popcount_bytes_popcnt(bytes) };
        }
    }
    popcount_bytes_impl(bytes)
}

/// XOR-popcount (Hamming distance) between two equal-length word slices.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: feature checked the line above.
            return unsafe { hamming_words_popcnt(a, b) };
        }
    }
    hamming_words_impl(a, b)
}

#[inline(always)]
fn hamming_words_impl(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x ^ y).count_ones() as u64)
        .sum()
}

/// Hardware-popcnt variant of [`hamming_words`].
///
/// # Safety
/// Caller must verify `popcnt` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn hamming_words_popcnt(a: &[u64], b: &[u64]) -> u64 {
    hamming_words_impl(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popcount_words_matches_naive() {
        for len in [0usize, 1, 7, 8, 9, 16, 17, 31] {
            let v: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let naive: u64 = v.iter().map(|w| w.count_ones() as u64).sum();
            assert_eq!(popcount_words(&v), naive, "len={len}");
        }
    }

    #[test]
    fn popcount_bytes_matches_naive() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let v: Vec<u8> = (0..len).map(|i| (i * 151 + 3) as u8).collect();
            let naive: u64 = v.iter().map(|b| b.count_ones() as u64).sum();
            assert_eq!(popcount_bytes(&v), naive, "len={len}");
        }
    }

    #[test]
    fn hamming_words_matches_naive() {
        let a: Vec<u64> = (0..13u64).map(|i| i.wrapping_mul(0xABCD_EF01)).collect();
        let b: Vec<u64> = (0..13u64).map(|i| i.wrapping_mul(0x1234_5678)).collect();
        let naive: u64 = a.iter().zip(&b).map(|(&x, &y)| (x ^ y).count_ones() as u64).sum();
        assert_eq!(hamming_words(&a, &b), naive);
    }

    #[test]
    fn lut_accumulate_simd_is_bit_identical_to_scalar() {
        // Every dispatched K, plus off-path Ks, on widths with tails.
        for &k in &[1usize, 3, 4, 5, 8, 16, 24, 32, 40, 64] {
            for &n in &[1usize, 7, 8, 13, 64] {
                let lut: Vec<f32> = (0..n * 256 * k)
                    .map(|i| ((i as u32).wrapping_mul(2654435761) as f32) * 1e-9)
                    .collect();
                let bytes: Vec<u8> = (0..n).map(|i| (i * 89 + 17) as u8).collect();
                let mut simd = vec![0.0f32; k];
                let mut scalar = vec![0.0f32; k];
                lut_accumulate(&lut, k, &bytes, &mut simd);
                lut_accumulate_scalar(&lut, k, &bytes, &mut scalar);
                assert_eq!(
                    simd.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    scalar.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "k={k} n={n}"
                );
            }
        }
    }
}
