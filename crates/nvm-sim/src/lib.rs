//! # pnw-nvm-sim — DRAM-emulated non-volatile memory with write accounting
//!
//! The PNW paper ("Predict and Write", ICDE 2021) evaluates on DRAM-emulated
//! NVM: *"As real NVM DIMMs are not available for us yet, we emulate NVM using
//! DRAM similar to prior works"*. Every metric the paper reports — bit flips,
//! modified words, written cache lines, per-address and per-bit wear — is a
//! **count**, so an emulated device that performs differential writes and
//! charges those counts reproduces the evaluation exactly.
//!
//! This crate provides that device:
//!
//! * [`NvmDevice`] — a byte-addressable memory with configurable word and
//!   cache-line geometry, supporting *raw* writes (every bit is charged, as a
//!   conventional PCM write would) and *differential* writes (read-before-
//!   write: only bits that differ are charged, as in DCW/FNW-class schemes).
//! * [`stats::WriteStats`] / [`stats::DeviceStats`] — per-operation and
//!   cumulative accounting of bit flips, auxiliary (flag/mask) bit flips,
//!   modified words and written cache lines.
//! * [`wear`] — per-word and per-bit wear counters with CDF extraction, used
//!   to regenerate Figures 12 and 13 of the paper.
//! * [`latency::LatencyModel`] — Table I memory-technology presets plus the
//!   600 ns 3D-XPoint figure used in §VI-A, turning write stats into modeled
//!   latencies.
//! * [`region`] — a bucket-array region allocator used by the stores built on
//!   top (data zones, index zones, LSM levels).
//! * [`fault`] — crash / torn-write injection used by the recovery tests,
//!   covering the cell array *and* the durable metadata files.
//! * [`backing`] — the [`DeviceBacking`] seam: volatile (DRAM-only) or
//!   write-through file-backed cell arrays.
//! * [`crc`] — the shared CRC-32 used by every durable file format.
//!
//! ## Example
//!
//! ```
//! use pnw_nvm_sim::{NvmConfig, NvmDevice, WriteMode};
//!
//! let mut dev = NvmDevice::new(NvmConfig::default().with_size(4096));
//! // Conventional write: all 64 bits of the 8-byte word are charged.
//! let s = dev.write(0, &[0xFFu8; 8], WriteMode::Raw).unwrap();
//! assert_eq!(s.bit_flips, 64);
//! // Differential overwrite with an identical value: nothing is charged.
//! let s = dev.write(0, &[0xFFu8; 8], WriteMode::Diff).unwrap();
//! assert_eq!(s.bit_flips, 0);
//! assert_eq!(s.lines_written, 0);
//! ```

#![warn(missing_docs)]

pub mod backing;
pub mod crc;
pub mod device;
pub mod fault;
pub mod geometry;
pub mod latency;
pub mod region;
pub mod stats;
pub mod wear;

pub use backing::{DeviceBacking, FileBacking};
pub use crc::{crc32, crc32_update, crc32c, crc32c_update};
pub use device::{CellView, NvmConfig, NvmDevice, NvmError, WriteMode};
pub use fault::{FaultConfig, FaultState, MetaTarget, MetaTear, StuckAtConfig, StuckWord};
pub use geometry::Geometry;
pub use latency::{projected_lifetime_ops, LatencyModel, MemoryTech};
pub use region::{Region, RegionAllocator};
pub use stats::{DeviceStats, WriteStats};
pub use wear::{WearCdf, WearTracker};
