//! The device-backing seam: where the emulated NVM array's bytes live.
//!
//! [`DeviceBacking::Volatile`] is the historical device — a DRAM `Vec`
//! that vanishes with the process, which is exactly right for figure
//! harnesses and unit tests. [`DeviceBacking::File`] gives the same
//! device a durable life: the in-DRAM image stays the read path (peeks
//! and diffs never touch the filesystem), and every mutated word range is
//! written through to a backing file, so what the file holds after a kill
//! is precisely what the emulated cell array held — including the
//! truncated prefix of a torn write, because fault injection cuts the
//! payload *before* both the image update and the flush.
//!
//! `WriteMode::Diff` maps dirty-*word* tracking onto flushed word ranges:
//! the write loop already knows which words changed, and only those
//! coalesced runs hit the file. A `Raw` write programs (and flushes) the
//! whole range, exactly as it charges the whole range.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::device::NvmError;

/// Where a device's cell array is backed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DeviceBacking {
    /// DRAM only — today's behavior, nothing survives the process.
    #[default]
    Volatile,
    /// Write-through to a file at this path: the file always mirrors the
    /// persisted cell array, byte for byte.
    File(PathBuf),
}

/// An open write-through backing file. Cloning shares the handle (the
/// device itself is `Clone`; clones write through to the same file).
#[derive(Debug, Clone)]
pub struct FileBacking {
    file: Arc<File>,
}

/// Maps an I/O failure into the device error space, keeping the kind.
pub(crate) fn io_err(e: io::Error) -> NvmError {
    NvmError::Io(e.kind())
}

impl FileBacking {
    /// Opens (or creates) the backing file for a device of `size` bytes
    /// and returns the handle plus the initial cell image:
    ///
    /// * a missing or empty file is sized to `size` and reads as zeroed
    ///   cells (freshly manufactured PCM);
    /// * a file of exactly `size` bytes is loaded as the persisted image;
    /// * any other length is a geometry mismatch and is rejected.
    pub fn open(path: &Path, size: usize) -> Result<(Self, Vec<u8>), NvmError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        let image = if len == 0 {
            file.set_len(size as u64).map_err(io_err)?;
            vec![0u8; size]
        } else if len == size as u64 {
            let mut image = vec![0u8; size];
            file.read_exact_at(&mut image, 0).map_err(io_err)?;
            image
        } else {
            return Err(NvmError::Io(io::ErrorKind::InvalidData));
        };
        Ok((
            FileBacking {
                file: Arc::new(file),
            },
            image,
        ))
    }

    /// Writes `bytes` through at absolute device offset `addr`.
    pub fn write_range(&self, addr: usize, bytes: &[u8]) -> Result<(), NvmError> {
        self.file.write_all_at(bytes, addr as u64).map_err(io_err)
    }

    /// Flushes file contents and metadata to stable storage.
    pub fn sync(&self) -> Result<(), NvmError> {
        self.file.sync_all().map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pnw_backing_{}_{name}", std::process::id()))
    }

    #[test]
    fn fresh_file_is_zeroed_and_sized() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let (b, image) = FileBacking::open(&path, 128).unwrap();
        assert_eq!(image, vec![0u8; 128]);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 128);
        b.sync().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_returns_persisted_bytes() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (b, _) = FileBacking::open(&path, 64).unwrap();
            b.write_range(8, b"durable!").unwrap();
            b.sync().unwrap();
        }
        let (_, image) = FileBacking::open(&path, 64).unwrap();
        assert_eq!(&image[8..16], b"durable!");
        assert_eq!(&image[..8], &[0u8; 8]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn size_mismatch_rejected() {
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, [0u8; 10]).unwrap();
        assert!(matches!(
            FileBacking::open(&path, 64),
            Err(NvmError::Io(io::ErrorKind::InvalidData))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
