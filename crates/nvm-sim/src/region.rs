//! Region allocation: carving a device's address space into zones.
//!
//! The paper's layout (Figure 2) places several structures on the same NVM
//! part: the K/V *data zone*, and — in the large-key configuration — the hash
//! index. The stores in this reproduction likewise share one device, so
//! [`RegionAllocator`] hands out non-overlapping, alignment-respecting
//! [`Region`]s.

/// A contiguous, exclusively-owned byte range of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte.
    pub start: usize,
    /// Length in bytes.
    pub len: usize,
}

impl Region {
    /// One-past-the-end byte offset.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Absolute address of `offset` within this region.
    ///
    /// # Panics
    /// Panics in debug builds if `offset` exceeds the region.
    #[inline]
    pub fn at(&self, offset: usize) -> usize {
        debug_assert!(offset <= self.len, "offset {offset} outside region");
        self.start + offset
    }

    /// Splits the region into `n` equal-size buckets of `bucket` bytes each,
    /// returning how many fit.
    pub fn bucket_count(&self, bucket: usize) -> usize {
        self.len.checked_div(bucket).unwrap_or(0)
    }

    /// Absolute address of bucket `i` with the given bucket size.
    #[inline]
    pub fn bucket_addr(&self, i: usize, bucket: usize) -> usize {
        debug_assert!((i + 1) * bucket <= self.len, "bucket {i} outside region");
        self.start + i * bucket
    }
}

/// Simple bump allocator over a device's address space.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    next: usize,
    size: usize,
}

impl RegionAllocator {
    /// Covers `[0, size)`.
    pub fn new(size: usize) -> Self {
        RegionAllocator { next: 0, size }
    }

    /// Allocates `len` bytes aligned to `align` (a power of two), or `None`
    /// if the device is exhausted.
    pub fn alloc(&mut self, len: usize, align: usize) -> Option<Region> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let start = self.next.checked_add(align - 1)? & !(align - 1);
        let end = start.checked_add(len)?;
        if end > self.size {
            return None;
        }
        self.next = end;
        Some(Region { start, len })
    }

    /// Allocates a bucket array: `count` buckets of `bucket` bytes, line
    /// aligned.
    pub fn alloc_buckets(&mut self, count: usize, bucket: usize) -> Option<Region> {
        self.alloc(count.checked_mul(bucket)?, 64)
    }

    /// Bytes still available (ignoring alignment padding).
    pub fn remaining(&self) -> usize {
        self.size - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_disjointness() {
        let mut a = RegionAllocator::new(1024);
        let r1 = a.alloc(10, 1).unwrap();
        let r2 = a.alloc(16, 64).unwrap();
        assert_eq!(r1.start, 0);
        assert_eq!(r2.start, 64);
        assert!(r1.end() <= r2.start);
    }

    #[test]
    fn alloc_exhaustion() {
        let mut a = RegionAllocator::new(100);
        assert!(a.alloc(100, 1).is_some());
        assert!(a.alloc(1, 1).is_none());
    }

    #[test]
    fn remaining_shrinks() {
        let mut a = RegionAllocator::new(128);
        assert_eq!(a.remaining(), 128);
        a.alloc(28, 1).unwrap();
        assert_eq!(a.remaining(), 100);
    }

    #[test]
    fn bucket_math() {
        let r = Region { start: 64, len: 640 };
        assert_eq!(r.bucket_count(64), 10);
        assert_eq!(r.bucket_addr(0, 64), 64);
        assert_eq!(r.bucket_addr(9, 64), 64 + 9 * 64);
        assert_eq!(r.at(10), 74);
    }

    #[test]
    fn alloc_buckets_is_line_aligned() {
        let mut a = RegionAllocator::new(4096);
        a.alloc(3, 1).unwrap();
        let r = a.alloc_buckets(4, 100).unwrap();
        assert_eq!(r.start % 64, 0);
        assert_eq!(r.len, 400);
    }

    #[test]
    fn zero_bucket_size() {
        let r = Region { start: 0, len: 64 };
        assert_eq!(r.bucket_count(0), 0);
    }
}
