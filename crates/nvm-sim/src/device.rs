//! The emulated NVM device.
//!
//! [`NvmDevice`] owns a DRAM buffer standing in for the physical NVM array
//! and funnels **every** write through one accounting point, so the write
//! schemes ([`pnw-schemes`](https://docs.rs/pnw-schemes)) and the stores built
//! on top are compared apples-to-apples.
//!
//! Two write modes model the two classes of hardware behaviour in the paper:
//!
//! * [`WriteMode::Raw`] — a conventional PCM write: every bit of the payload
//!   is programmed (and charged), whether or not it changed.
//! * [`WriteMode::Diff`] — a read-before-write (RBW) differential update:
//!   the old content is read, and only differing bits are programmed. This is
//!   the primitive underlying DCW, FNW, MinShift, Captopril and PNW itself
//!   (PNW Algorithm 2, lines 5–6: *"for each bit in {D} and {D'}: if they
//!   differ, update memory bit"*).

use crate::backing::{DeviceBacking, FileBacking};
use crate::fault::{FaultConfig, FaultState, StuckAtConfig, StuckWord};
use crate::geometry::Geometry;
use crate::latency::LatencyModel;
use crate::stats::{DeviceStats, WriteStats};
use crate::wear::{WearCdf, WearTracker};
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Errors returned by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmError {
    /// The requested byte range does not fit in the device.
    OutOfBounds {
        /// First byte of the request.
        addr: usize,
        /// Length of the request.
        len: usize,
        /// Device capacity in bytes.
        size: usize,
    },
    /// The device is in a crashed state and rejects new operations.
    Crashed,
    /// A file-backed operation failed in the filesystem (the `ErrorKind`
    /// is carried so the error stays `Clone + PartialEq`).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for NvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmError::OutOfBounds { addr, len, size } => write!(
                f,
                "access [{addr}, {}) out of bounds for device of {size} bytes",
                addr + len
            ),
            NvmError::Crashed => write!(f, "device is in crashed state"),
            NvmError::Io(kind) => write!(f, "backing-file I/O error: {kind}"),
        }
    }
}

impl std::error::Error for NvmError {}

/// How a write programs the cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Conventional write: all payload bits are programmed and charged.
    Raw,
    /// Read-before-write differential update: only differing bits are
    /// programmed and charged; untouched words/lines cost nothing.
    Diff,
}

/// Configuration of an emulated device.
#[derive(Debug, Clone)]
pub struct NvmConfig {
    /// Capacity in bytes.
    pub size: usize,
    /// Word / cache-line geometry.
    pub geometry: Geometry,
    /// Enable per-bit wear counters (costs 2 B of DRAM per emulated bit).
    pub track_bit_wear: bool,
    /// Latency model used by [`NvmDevice::modeled_write_cost`].
    pub latency: LatencyModel,
    /// Fault-injection settings.
    pub fault: FaultConfig,
    /// Where the cell array lives (DRAM only, or written through to a
    /// file). File-backed devices must be created with
    /// [`NvmDevice::open`].
    pub backing: DeviceBacking,
}

impl Default for NvmConfig {
    fn default() -> Self {
        NvmConfig {
            size: 1 << 20,
            geometry: Geometry::default(),
            track_bit_wear: false,
            latency: LatencyModel::xpoint(),
            fault: FaultConfig::default(),
            backing: DeviceBacking::Volatile,
        }
    }
}

impl NvmConfig {
    /// Sets the capacity.
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Enables per-bit wear tracking (needed for Figure 13).
    pub fn with_bit_wear(mut self, on: bool) -> Self {
        self.track_bit_wear = on;
        self
    }

    /// Sets the geometry.
    pub fn with_geometry(mut self, g: Geometry) -> Self {
        self.geometry = g;
        self
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, m: LatencyModel) -> Self {
        self.latency = m;
        self
    }

    /// Sets the backing (pair with [`NvmDevice::open`] for
    /// [`DeviceBacking::File`]).
    pub fn with_backing(mut self, b: DeviceBacking) -> Self {
        self.backing = b;
        self
    }

    /// Configures wear-induced stuck-at latching (see [`StuckAtConfig`]).
    pub fn with_stuck_at(mut self, s: StuckAtConfig) -> Self {
        self.fault.stuck_at = s;
        self
    }
}

/// The shared cell array behind an [`NvmDevice`].
///
/// Storage is a boxed `u64` slice (so the base pointer is 8-byte aligned,
/// letting [`CellView`] do word-granular volatile reads) wrapped in an
/// `UnsafeCell` so that lock-free readers holding a [`CellView`] can copy
/// bytes out *while* the single writer mutates through `&mut NvmDevice`.
///
/// This is the crossbeam-`SeqLock` discipline: the writer performs plain
/// stores, readers perform volatile loads, and an *external* sequence
/// counter (owned by the store layer) brackets every mutation so readers
/// can detect and retry torn reads. A `CellView` used without that
/// validation returns bytes that may be torn — never out of bounds, since
/// the buffer's size is fixed at construction and never reallocates.
struct CellBuf {
    words: UnsafeCell<Box<[u64]>>,
    len: usize,
}

// SAFETY: concurrent access is raw-pointer based and follows the seqlock
// discipline documented above; the buffer itself never moves or resizes.
unsafe impl Send for CellBuf {}
unsafe impl Sync for CellBuf {}

impl std::fmt::Debug for CellBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellBuf").field("len", &self.len).finish()
    }
}

impl CellBuf {
    fn new_zeroed(len: usize) -> Self {
        CellBuf {
            words: UnsafeCell::new(vec![0u64; len.div_ceil(8)].into_boxed_slice()),
            len,
        }
    }

    fn from_bytes(bytes: &[u8]) -> Self {
        let buf = CellBuf::new_zeroed(bytes.len());
        // SAFETY: freshly allocated, no other reference exists yet.
        unsafe { buf.slice_mut()[..bytes.len()].copy_from_slice(bytes) };
        buf
    }

    fn base(&self) -> *mut u8 {
        // `get()` points at the Box itself; deref to reach the slice data.
        unsafe { (*self.words.get()).as_mut_ptr() as *mut u8 }
    }

    /// # Safety
    /// Caller must be the unique writer (holds `&mut NvmDevice` or has not
    /// yet shared the buffer). Concurrent `CellView` volatile reads are
    /// permitted under the seqlock discipline.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.base(), self.len) }
    }

    /// # Safety
    /// Caller must guarantee no concurrent writer, or tolerate torn bytes.
    unsafe fn slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.base(), self.len) }
    }
}

/// A lock-free read handle onto a device's cell array.
///
/// Cloning is an `Arc` bump. Reads are volatile byte/word copies: they never
/// fault, but bytes racing a concurrent writer may be **torn** — callers
/// must validate each read against the store's per-shard sequence counter
/// and retry (see the seqlock protocol in the store layer). The view stays
/// valid for the lifetime of the device, across recovery and model swaps,
/// because the underlying buffer never reallocates.
#[derive(Debug, Clone)]
pub struct CellView {
    buf: Arc<CellBuf>,
}

impl CellView {
    /// Device capacity in bytes.
    pub fn len(&self) -> usize {
        self.buf.len
    }

    /// Whether the device has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.buf.len == 0
    }

    /// Copies `out.len()` bytes starting at `addr` into `out` with volatile
    /// loads. Returns `false` (leaving `out` unspecified) if the range is
    /// out of bounds. The copy may be torn if it races a writer; the caller's
    /// seqlock validation decides whether to trust it.
    pub fn read_into(&self, addr: usize, out: &mut [u8]) -> bool {
        let len = out.len();
        let Some(end) = addr.checked_add(len) else {
            return false;
        };
        if end > self.buf.len {
            return false;
        }
        // SAFETY: bounds checked above; base is 8-byte aligned so the
        // word-granular loads below are aligned whenever (addr + i) % 8 == 0.
        unsafe {
            let base = self.buf.base().add(addr);
            let mut i = 0;
            while i < len && !(addr + i).is_multiple_of(8) {
                out[i] = std::ptr::read_volatile(base.add(i));
                i += 1;
            }
            while i + 8 <= len {
                let w = std::ptr::read_volatile(base.add(i) as *const u64);
                out[i..i + 8].copy_from_slice(&w.to_ne_bytes());
                i += 8;
            }
            while i < len {
                out[i] = std::ptr::read_volatile(base.add(i));
                i += 1;
            }
        }
        true
    }
}

/// An emulated NVM device: a DRAM image as the read path, optionally
/// written through to a backing file (see [`DeviceBacking`]).
#[derive(Debug)]
pub struct NvmDevice {
    data: Arc<CellBuf>,
    geometry: Geometry,
    latency: LatencyModel,
    stats: DeviceStats,
    wear: WearTracker,
    fault: FaultState,
    backing: Option<FileBacking>,
}

impl Clone for NvmDevice {
    /// Deep-copies the cell array: the clone gets its own buffer, detached
    /// from any [`CellView`] handed out by the original.
    fn clone(&self) -> Self {
        NvmDevice {
            data: Arc::new(CellBuf::from_bytes(self.cells())),
            geometry: self.geometry,
            latency: self.latency,
            stats: self.stats.clone(),
            wear: self.wear.clone(),
            fault: self.fault.clone(),
            backing: self.backing.clone(),
        }
    }
}

impl NvmDevice {
    /// Creates a volatile device, zero-initialized (freshly manufactured
    /// PCM cells).
    ///
    /// # Panics
    /// Panics if `cfg.backing` is [`DeviceBacking::File`] — file-backed
    /// devices are created with the fallible [`NvmDevice::open`].
    pub fn new(cfg: NvmConfig) -> Self {
        assert!(
            cfg.backing == DeviceBacking::Volatile,
            "file-backed devices must be created with NvmDevice::open"
        );
        NvmDevice {
            data: Arc::new(CellBuf::new_zeroed(cfg.size)),
            geometry: cfg.geometry,
            latency: cfg.latency,
            stats: DeviceStats::default(),
            wear: WearTracker::new(cfg.size, cfg.geometry.word_bytes, cfg.track_bit_wear),
            fault: FaultState::new(cfg.fault),
            backing: None,
        }
    }

    /// The cell array as a plain slice.
    ///
    /// Sound because `&self` on this method still means there is no *other*
    /// writer (mutation requires `&mut self`); concurrent [`CellView`]
    /// readers use volatile loads and validate via the seqlock counter.
    fn cells(&self) -> &[u8] {
        unsafe { self.data.slice() }
    }

    /// A lock-free read handle onto the cell array. See [`CellView`] for
    /// the torn-read contract.
    pub fn cell_view(&self) -> CellView {
        CellView {
            buf: Arc::clone(&self.data),
        }
    }

    /// Creates a device honoring `cfg.backing`: [`DeviceBacking::Volatile`]
    /// behaves exactly like [`NvmDevice::new`]; [`DeviceBacking::File`]
    /// opens (or creates) the backing file — an existing file of the
    /// configured size is loaded as the persisted cell image, so reopening
    /// after a kill resumes from precisely what the last flushed write
    /// left behind. Session counters (stats, wear, fault state) always
    /// start fresh; a durable caller restores them from its checkpoint via
    /// [`NvmDevice::restore_stats`] / [`NvmDevice::restore_wear`].
    pub fn open(cfg: NvmConfig) -> Result<Self, NvmError> {
        let (backing, data) = match &cfg.backing {
            DeviceBacking::Volatile => (None, CellBuf::new_zeroed(cfg.size)),
            DeviceBacking::File(path) => {
                let (b, image) = FileBacking::open(path, cfg.size)?;
                (Some(b), CellBuf::from_bytes(&image))
            }
        };
        Ok(NvmDevice {
            data: Arc::new(data),
            geometry: cfg.geometry,
            latency: cfg.latency,
            stats: DeviceStats::default(),
            wear: WearTracker::new(cfg.size, cfg.geometry.word_bytes, cfg.track_bit_wear),
            fault: FaultState::new(cfg.fault),
            backing,
        })
    }

    /// Whether this device writes through to a backing file.
    pub fn is_file_backed(&self) -> bool {
        self.backing.is_some()
    }

    /// Flushes the backing file (if any) to stable storage.
    pub fn sync(&self) -> Result<(), NvmError> {
        match &self.backing {
            Some(b) => b.sync(),
            None => Ok(()),
        }
    }

    /// Overwrites the cumulative statistics — used by recovery to restore
    /// counters from a checkpoint so wear/traffic CDFs survive a restart.
    pub fn restore_stats(&mut self, stats: DeviceStats) {
        self.stats = stats;
    }

    /// Overwrites the wear counters from checkpointed values (see
    /// [`WearTracker::restore`]). Bit counters are restored only when this
    /// device tracks bits *and* the checkpoint carried them.
    pub fn restore_wear(&mut self, word_writes: &[u32], bit_flips: Option<&[u16]>) {
        self.wear.restore(word_writes, bit_flips);
    }

    /// Device capacity in bytes.
    pub fn size(&self) -> usize {
        self.data.len
    }

    /// Device geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Clears cumulative statistics (wear counters are kept; use
    /// [`NvmDevice::reset_wear`] for those).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Clears wear counters.
    pub fn reset_wear(&mut self) {
        self.wear.reset();
    }

    fn check(&self, addr: usize, len: usize) -> Result<(), NvmError> {
        if self.fault.is_crashed() {
            return Err(NvmError::Crashed);
        }
        if addr.checked_add(len).is_none_or(|end| end > self.data.len) {
            return Err(NvmError::OutOfBounds {
                addr,
                len,
                size: self.data.len,
            });
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read(&mut self, addr: usize, len: usize) -> Result<&[u8], NvmError> {
        self.check(addr, len)?;
        self.stats.record_read(len);
        Ok(&self.cells()[addr..addr + len])
    }

    /// Reads without recording statistics (used by verification / tests /
    /// recovery scans that should not perturb the measurement).
    pub fn peek(&self, addr: usize, len: usize) -> Result<&[u8], NvmError> {
        if addr.checked_add(len).is_none_or(|end| end > self.data.len) {
            return Err(NvmError::OutOfBounds {
                addr,
                len,
                size: self.data.len,
            });
        }
        Ok(&self.cells()[addr..addr + len])
    }

    /// Copies `out.len()` bytes starting at `addr` into a caller-provided
    /// buffer, with [`NvmDevice::peek`] semantics (no statistics). Lets the
    /// store's GET path reuse one buffer instead of allocating per read.
    pub fn peek_into(&self, addr: usize, out: &mut [u8]) -> Result<(), NvmError> {
        out.copy_from_slice(self.peek(addr, out.len())?);
        Ok(())
    }

    /// Writes `new` at `addr` with the given mode, returning this
    /// operation's statistics (also accumulated into [`NvmDevice::stats`]).
    ///
    /// In `Diff` mode the read-before-write traffic is charged as
    /// `lines_read` over the spanned range.
    ///
    /// If a torn-write fault is armed (see [`crate::fault`]), only a prefix
    /// of the payload's words is persisted and the device transitions to the
    /// crashed state; the returned stats cover only the persisted prefix.
    pub fn write(&mut self, addr: usize, new: &[u8], mode: WriteMode) -> Result<WriteStats, NvmError> {
        self.check(addr, new.len())?;

        // Fault injection: truncate the effective payload on a torn write.
        let effective_len = match self.fault.arm_write(new.len(), self.geometry.word_bytes) {
            Some(torn_len) => torn_len,
            None => new.len(),
        };
        let new = &new[..effective_len];

        let mut s = WriteStats {
            bits_addressed: (new.len() as u64) * 8,
            ..Default::default()
        };
        if mode == WriteMode::Diff {
            s.lines_read = self.geometry.lines_spanned(addr, new.len()) as u64;
        }

        let mut dirty_words = 0u64;
        let mut last_dirty_line = usize::MAX;
        let mut dirty_lines = 0u64;
        // The coalesced dirty run currently being flushed through to the
        // backing file (Diff mode flushes exactly the words that changed).
        let mut flush_run: Option<(usize, usize)> = None;
        // One flag keeps the stuck-at machinery entirely off the common
        // path: false unless a bit is already stuck or latching is armed.
        let stuck_active = self.fault.stuck_active();

        let buf = Arc::clone(&self.data);
        // SAFETY: `&mut self` makes this the unique writer; concurrent
        // CellView readers are volatile and seqlock-validated.
        let cells: &mut [u8] = unsafe { buf.slice_mut() };
        for (widx, range) in self.geometry.words_in(addr, new.len()) {
            let off = range.start - addr;
            let new_chunk = &new[off..off + range.len()];

            let word_dirty = match mode {
                WriteMode::Raw => {
                    // Every cell is programmed and charged; wear is one
                    // batched call over the range, not one per bit.
                    s.bit_flips += (range.len() as u64) * 8;
                    self.wear.record_range_flips(range.start, range.len());
                    true
                }
                WriteMode::Diff => {
                    // One XOR-diff pass per device word on u64 lanes (byte
                    // tail separate): yields the flip count *and* records
                    // per-bit wear from the same masks, replacing the old
                    // byte-at-a-time × bit-at-a-time loops.
                    let diff_bits = diff_and_record_flips(
                        &mut self.wear,
                        range.start,
                        &cells[range.clone()],
                        new_chunk,
                    );
                    s.bit_flips += diff_bits;
                    diff_bits > 0
                }
            };
            if word_dirty {
                dirty_words += 1;
                self.wear.record_word_write(widx);
                let line = self.geometry.line_of(range.start);
                if line != last_dirty_line {
                    dirty_lines += 1;
                    last_dirty_line = line;
                }
                if self.backing.is_some() {
                    flush_run = match flush_run {
                        Some((start, end)) if end == range.start => Some((start, range.end)),
                        Some(run) => {
                            Self::flush_range(self.backing.as_ref(), cells, run)?;
                            Some((range.start, range.end))
                        }
                        None => Some((range.start, range.end)),
                    };
                }
            }
            cells[range.clone()].copy_from_slice(new_chunk);
            if stuck_active {
                // Wear-induced latching: a dirty write to an over-endurance
                // word may latch one bit at its just-written value.
                if word_dirty {
                    let word_val =
                        word_image(cells, widx * self.geometry.word_bytes, self.geometry.word_bytes);
                    self.fault.maybe_latch(
                        widx,
                        self.wear.word_writes()[widx],
                        (self.geometry.word_bytes.min(8) * 8) as u32,
                        word_val,
                    );
                }
                // Re-impose every stuck bit over what was just programmed,
                // before the run reaches the backing file: reads (locked,
                // peek, or lock-free CellView) then serve the stuck value
                // with no special-casing anywhere else.
                if let Some(sw) = self.fault.stuck_word(widx) {
                    apply_stuck(cells, self.geometry.word_bytes, widx, sw);
                }
            }
        }
        if let Some(run) = flush_run {
            Self::flush_range(self.backing.as_ref(), cells, run)?;
        }

        s.words_written = dirty_words;
        s.lines_written = dirty_lines;
        self.stats.record_write(&s);
        Ok(s)
    }

    /// Writes the image bytes of `[start, end)` through to the backing
    /// file. Called after the run's image bytes are updated (runs are
    /// flushed once the *next* dirty word is non-adjacent, by which point
    /// every byte of the run has been copied into the image — except the
    /// final run, flushed after the loop).
    fn flush_range(
        backing: Option<&FileBacking>,
        data: &[u8],
        (start, end): (usize, usize),
    ) -> Result<(), NvmError> {
        match backing {
            Some(b) => b.write_range(start, &data[start..end]),
            None => Ok(()),
        }
    }

    /// Computes what a [`WriteMode::Diff`] write of `new` at `addr` *would*
    /// charge, without mutating anything. Used by callers that bundle
    /// several logical fields into one physical write but need per-field
    /// accounting (e.g. the PNW store's bucket header + value).
    pub fn diff_stats(&self, addr: usize, new: &[u8]) -> Result<WriteStats, NvmError> {
        let old = self.peek(addr, new.len())?;
        let mut s = WriteStats {
            bits_addressed: (new.len() as u64) * 8,
            lines_read: self.geometry.lines_spanned(addr, new.len()) as u64,
            ..Default::default()
        };
        let mut last_dirty_line = usize::MAX;
        for (_, range) in self.geometry.words_in(addr, new.len()) {
            let off = range.start - addr;
            let diff = hamming(&old[off..off + range.len()], &new[off..off + range.len()]);
            if diff > 0 {
                s.bit_flips += diff;
                s.words_written += 1;
                let line = self.geometry.line_of(range.start);
                if line != last_dirty_line {
                    s.lines_written += 1;
                    last_dirty_line = line;
                }
            }
        }
        Ok(s)
    }

    /// Charges auxiliary metadata bit flips (scheme flags, rotation counters,
    /// mask updates) to the device totals without touching the data array.
    ///
    /// Schemes that keep their metadata in dedicated NVM words use this so
    /// that Figure 6's *total* bit flips include the flag overhead, exactly
    /// as the paper's comparisons do.
    pub fn charge_aux(&mut self, bits: u64) {
        self.stats.totals.aux_bit_flips += bits;
    }

    /// Modeled latency of a write with the given stats under this device's
    /// latency model.
    pub fn modeled_write_cost(&self, s: &WriteStats) -> std::time::Duration {
        self.latency.write_cost(s)
    }

    /// The latency model in effect.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// Per-word wear CDF over `[start, start+len)` (Figure 12).
    pub fn word_wear_cdf(&self, start: usize, len: usize) -> WearCdf {
        self.wear.word_cdf(start, len)
    }

    /// Per-bit wear CDF over `[start, start+len)` (Figure 13); `None` unless
    /// the device was configured with `track_bit_wear`.
    pub fn bit_wear_cdf(&self, start: usize, len: usize) -> Option<WearCdf> {
        self.wear.bit_cdf(start, len)
    }

    /// Maximum writes observed on any word (lifetime bound).
    pub fn max_word_writes(&self) -> u32 {
        self.wear.max_word_writes()
    }

    /// Direct access to the wear tracker.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Simulates a power failure: subsequent operations fail with
    /// [`NvmError::Crashed`] until [`NvmDevice::recover`] is called. The data
    /// array retains exactly what was persisted (NVM is non-volatile).
    pub fn crash(&mut self) {
        self.fault.crash();
    }

    /// Clears the crashed state, as a restart would.
    pub fn recover(&mut self) {
        self.fault.recover();
    }

    /// Whether the device is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.fault.is_crashed()
    }

    /// Arms a torn write: the *next* write persists only `words` whole words
    /// and then the device crashes. Used by recovery tests.
    pub fn arm_torn_write(&mut self, words: usize) {
        self.fault.arm_torn(words);
    }

    /// Latches bit `bit` of device word `word` stuck at `stuck_at_one`,
    /// forcing the cell image (and any backing file) to the stuck value
    /// immediately — arming an occupied word corrupts its at-rest data,
    /// exactly the fault a CRC-verifying read or scrub pass must catch.
    /// No statistics or wear are charged: this is damage, not a write.
    ///
    /// Bits beyond the first 64 of a (hypothetical) wider word cannot be
    /// armed; the default 8-byte geometry covers every word bit.
    pub fn arm_stuck_bit(
        &mut self,
        word: usize,
        bit: u32,
        stuck_at_one: bool,
    ) -> Result<(), NvmError> {
        let wb = self.geometry.word_bytes;
        let byte_addr = word * wb + (bit as usize) / 8;
        if (bit as usize) >= wb.min(8) * 8 || byte_addr >= self.data.len {
            return Err(NvmError::OutOfBounds {
                addr: byte_addr,
                len: 1,
                size: self.data.len,
            });
        }
        self.fault.arm_stuck_bit(word, bit, stuck_at_one);
        let buf = Arc::clone(&self.data);
        // SAFETY: `&mut self` makes this the unique writer; concurrent
        // CellView readers are volatile and seqlock-validated.
        let cells: &mut [u8] = unsafe { buf.slice_mut() };
        let m = 1u8 << (bit % 8);
        let old = cells[byte_addr];
        let forced = if stuck_at_one { old | m } else { old & !m };
        if forced != old {
            cells[byte_addr] = forced;
            if let Some(b) = &self.backing {
                b.write_range(byte_addr, std::slice::from_ref(&forced))?;
            }
        }
        Ok(())
    }

    /// Total stuck bits on the device (explicitly armed + wear-latched).
    pub fn stuck_bit_count(&self) -> u64 {
        self.fault.stuck_bit_count()
    }

    /// Stuck bits whose word overlaps `[addr, addr + len)` — how the store
    /// layer decides a bucket's media is damaged and must be retired.
    pub fn stuck_bits_in(&self, addr: usize, len: usize) -> u64 {
        let wb = self.geometry.word_bytes;
        self.fault
            .stuck_words()
            .filter(|(w, _)| {
                let ws = w * wb;
                ws < addr + len && ws + wb > addr
            })
            .map(|(_, s)| s.mask.count_ones() as u64)
            .sum()
    }

    /// Serializes the persistent state (the cell array) to a byte image —
    /// what would survive on the physical part across power cycles. Stats,
    /// wear counters and fault state are DRAM-side and not included.
    pub fn to_image(&self) -> &[u8] {
        self.cells()
    }

    /// Writes the cell image to a file.
    pub fn save_image(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.cells())
    }

    /// Reconstructs a device from a previously saved cell image; the image
    /// length overrides `cfg.size`. Counters start fresh (they model the
    /// *current session's* traffic, as the paper's measurements do).
    pub fn from_image(mut cfg: NvmConfig, image: Vec<u8>) -> Self {
        cfg.size = image.len();
        let mut dev = NvmDevice::new(cfg);
        dev.data = Arc::new(CellBuf::from_bytes(&image));
        dev
    }

    /// Loads a device from a cell-image file.
    pub fn load_image(cfg: NvmConfig, path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::from_image(cfg, std::fs::read(path)?))
    }
}

/// Hamming distance between two equal-length byte slices.
///
/// Operates on `u64` words — one XOR + popcount per 8 bytes — with the
/// byte tail folded into a single zero-padded word; this is the hot kernel
/// of the whole simulator.
#[inline]
pub fn hamming(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut total = 0u64;
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        let xa = u64::from_le_bytes(ca.try_into().unwrap());
        let xb = u64::from_le_bytes(cb.try_into().unwrap());
        total += (xa ^ xb).count_ones() as u64;
    }
    let (ra, rb) = (chunks_a.remainder(), chunks_b.remainder());
    if !ra.is_empty() {
        total += (tail_word(ra) ^ tail_word(rb)).count_ones() as u64;
    }
    total
}

/// Zero-pads a sub-8-byte tail into one little-endian `u64`.
#[inline]
fn tail_word(bytes: &[u8]) -> u64 {
    let mut pad = [0u8; 8];
    pad[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(pad)
}

/// Loads the (up to 64-bit) little-endian image of the word starting at
/// byte `start`, clamped to the device end.
#[inline]
fn word_image(cells: &[u8], start: usize, word_bytes: usize) -> u64 {
    let end = (start + word_bytes.min(8)).min(cells.len());
    tail_word(&cells[start..end])
}

/// Overlays a word's stuck bits onto the cell image.
#[inline]
fn apply_stuck(cells: &mut [u8], word_bytes: usize, widx: usize, sw: StuckWord) {
    let start = widx * word_bytes;
    let end = (start + word_bytes.min(8)).min(cells.len());
    for (i, byte) in cells[start..end].iter_mut().enumerate() {
        let m = (sw.mask >> (i * 8)) as u8;
        if m != 0 {
            *byte = (*byte & !m) | ((sw.vals >> (i * 8)) as u8 & m);
        }
    }
}

/// XOR-diff scan of two equal-length chunks starting at absolute byte
/// address `start`: returns the Hamming distance and records each flipped
/// bit in `wear` (a no-op when bit tracking is off), one wear call per
/// dirty `u64` word instead of one per bit.
#[inline]
fn diff_and_record_flips(wear: &mut WearTracker, start: usize, old: &[u8], new: &[u8]) -> u64 {
    debug_assert_eq!(old.len(), new.len());
    let mut flips = 0u64;
    let mut pos = start;
    let mut chunks_o = old.chunks_exact(8);
    let mut chunks_n = new.chunks_exact(8);
    for (co, cn) in (&mut chunks_o).zip(&mut chunks_n) {
        let xor = u64::from_le_bytes(co.try_into().unwrap())
            ^ u64::from_le_bytes(cn.try_into().unwrap());
        if xor != 0 {
            flips += xor.count_ones() as u64;
            wear.record_word_flips(pos, xor);
        }
        pos += 8;
    }
    let (ro, rn) = (chunks_o.remainder(), chunks_n.remainder());
    if !ro.is_empty() {
        let xor = tail_word(ro) ^ tail_word(rn);
        if xor != 0 {
            flips += xor.count_ones() as u64;
            wear.record_word_flips(pos, xor);
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(size: usize) -> NvmDevice {
        NvmDevice::new(NvmConfig::default().with_size(size))
    }

    #[test]
    fn raw_write_charges_every_bit() {
        let mut d = dev(1024);
        let s = d.write(0, &[0u8; 16], WriteMode::Raw).unwrap();
        assert_eq!(s.bit_flips, 128); // even writing zeros over zeros
        assert_eq!(s.words_written, 2);
        assert_eq!(s.lines_written, 1);
        assert_eq!(s.lines_read, 0);
    }

    #[test]
    fn diff_write_charges_only_differences() {
        let mut d = dev(1024);
        d.write(0, &[0xFFu8; 8], WriteMode::Raw).unwrap();
        let s = d.write(0, &[0xFEu8; 8], WriteMode::Diff).unwrap();
        assert_eq!(s.bit_flips, 8); // one bit per byte
        assert_eq!(s.words_written, 1);
        assert_eq!(s.lines_written, 1);
        assert_eq!(s.lines_read, 1);
    }

    #[test]
    fn diff_write_identical_touches_nothing() {
        let mut d = dev(1024);
        d.write(64, &[0xABu8; 32], WriteMode::Raw).unwrap();
        let s = d.write(64, &[0xABu8; 32], WriteMode::Diff).unwrap();
        assert_eq!(s.bit_flips, 0);
        assert_eq!(s.words_written, 0);
        assert_eq!(s.lines_written, 0);
        // But RBW still had to read the line.
        assert_eq!(s.lines_read, 1);
    }

    #[test]
    fn diff_write_counts_dirty_lines_not_spanned_lines() {
        let mut d = dev(4096);
        // 128-byte value spanning 2 lines; make only the second line differ.
        let mut old = vec![0u8; 128];
        d.write(0, &old, WriteMode::Raw).unwrap();
        old[100] = 0xFF;
        let s = d.write(0, &old, WriteMode::Diff).unwrap();
        assert_eq!(s.lines_written, 1);
        assert_eq!(s.words_written, 1);
        assert_eq!(s.bit_flips, 8);
        assert_eq!(s.lines_read, 2);
    }

    #[test]
    fn write_persists_data() {
        let mut d = dev(256);
        d.write(10, b"hello world", WriteMode::Diff).unwrap();
        assert_eq!(d.read(10, 11).unwrap(), b"hello world");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut d = dev(64);
        assert!(matches!(
            d.write(60, &[0u8; 8], WriteMode::Raw),
            Err(NvmError::OutOfBounds { .. })
        ));
        assert!(d.read(64, 1).is_err());
        // Boundary case is fine.
        assert!(d.write(56, &[0u8; 8], WriteMode::Raw).is_ok());
    }

    #[test]
    fn wear_counters_accumulate_per_word() {
        let mut d = dev(256);
        d.write(0, &[1u8; 8], WriteMode::Raw).unwrap();
        d.write(0, &[2u8; 8], WriteMode::Diff).unwrap();
        d.write(8, &[2u8; 8], WriteMode::Diff).unwrap();
        assert_eq!(d.wear().word_writes()[0], 2);
        assert_eq!(d.wear().word_writes()[1], 1);
        assert_eq!(d.max_word_writes(), 2);
    }

    #[test]
    fn clean_diff_does_not_wear() {
        let mut d = dev(256);
        d.write(0, &[7u8; 8], WriteMode::Raw).unwrap();
        d.write(0, &[7u8; 8], WriteMode::Diff).unwrap();
        assert_eq!(d.wear().word_writes()[0], 1);
    }

    #[test]
    fn bit_wear_tracks_flipped_bits_only() {
        let mut d = NvmDevice::new(NvmConfig::default().with_size(64).with_bit_wear(true));
        d.write(0, &[0b0000_0001u8], WriteMode::Diff).unwrap();
        d.write(0, &[0b0000_0011u8], WriteMode::Diff).unwrap();
        let bits = d.wear().bit_flips().unwrap();
        assert_eq!(bits[0], 1); // bit 0 flipped once (0->1)
        assert_eq!(bits[1], 1); // bit 1 flipped once
        assert_eq!(bits[2], 0);
        let cdf = d.bit_wear_cdf(0, 1).unwrap();
        assert_eq!(cdf.population, 8);
    }

    #[test]
    fn stats_accumulate_across_ops() {
        let mut d = dev(1024);
        d.write(0, &[0xFFu8; 64], WriteMode::Raw).unwrap();
        d.write(0, &[0x00u8; 64], WriteMode::Diff).unwrap();
        assert_eq!(d.stats().write_ops, 2);
        assert_eq!(d.stats().totals.bit_flips, 1024);
        d.read(0, 64).unwrap();
        assert_eq!(d.stats().read_ops, 1);
        assert_eq!(d.stats().bytes_read, 64);
    }

    #[test]
    fn charge_aux_adds_to_totals_only() {
        let mut d = dev(64);
        d.charge_aux(5);
        assert_eq!(d.stats().totals.aux_bit_flips, 5);
        assert_eq!(d.stats().write_ops, 0);
    }

    #[test]
    fn crash_blocks_io_until_recover() {
        let mut d = dev(64);
        d.write(0, b"persist!", WriteMode::Raw).unwrap();
        d.crash();
        assert!(matches!(d.read(0, 8), Err(NvmError::Crashed)));
        assert!(matches!(
            d.write(0, b"x", WriteMode::Raw),
            Err(NvmError::Crashed)
        ));
        d.recover();
        assert_eq!(d.read(0, 8).unwrap(), b"persist!");
    }

    #[test]
    fn torn_write_persists_prefix_then_crashes() {
        let mut d = dev(256);
        d.arm_torn_write(1); // persist only the first 8-byte word
        let s = d.write(0, &[0xAAu8; 24], WriteMode::Raw).unwrap();
        assert_eq!(s.words_written, 1);
        assert!(d.is_crashed());
        d.recover();
        assert_eq!(d.peek(0, 8).unwrap(), &[0xAAu8; 8]);
        assert_eq!(d.peek(8, 16).unwrap(), &[0u8; 16]);
    }

    #[test]
    fn hamming_kernel() {
        assert_eq!(hamming(&[0xFF; 16], &[0x00; 16]), 128);
        assert_eq!(hamming(&[0b1010], &[0b0101]), 4);
        assert_eq!(hamming(&[], &[]), 0);
        // Unaligned tail (not a multiple of 8).
        let a = [0xFFu8; 11];
        let b = [0xFEu8; 11];
        assert_eq!(hamming(&a, &b), 11);
    }

    #[test]
    fn diff_stats_previews_exactly_what_write_charges() {
        let mut d = dev(1024);
        d.write(0, &[0x5Au8; 96], WriteMode::Raw).unwrap();
        let new = {
            let mut v = vec![0x5Au8; 96];
            v[0] = 0xFF; // line 0
            v[70] = 0x00; // line 1
            v
        };
        let preview = d.diff_stats(0, &new).unwrap();
        let actual = d.write(0, &new, WriteMode::Diff).unwrap();
        assert_eq!(preview, actual);
        assert_eq!(preview.lines_written, 2);
        // Preview does not mutate.
        let again = d.diff_stats(0, &new).unwrap();
        assert_eq!(again.bit_flips, 0);
    }

    #[test]
    fn image_roundtrip_preserves_cells() {
        let mut d = dev(256);
        d.write(8, b"persist me", WriteMode::Raw).unwrap();
        let image = d.to_image().to_vec();
        let d2 = NvmDevice::from_image(NvmConfig::default(), image);
        assert_eq!(d2.size(), 256);
        assert_eq!(d2.peek(8, 10).unwrap(), b"persist me");
        // Session-local state starts fresh.
        assert_eq!(d2.stats().write_ops, 0);
        assert_eq!(d2.max_word_writes(), 0);
    }

    #[test]
    fn image_file_roundtrip() {
        let mut d = dev(128);
        d.write(0, &[0xEE; 16], WriteMode::Raw).unwrap();
        let path = std::env::temp_dir().join("pnw_nvm_image_test.bin");
        d.save_image(&path).unwrap();
        let d2 = NvmDevice::load_image(NvmConfig::default(), &path).unwrap();
        assert_eq!(d2.peek(0, 16).unwrap(), &[0xEE; 16]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn peek_into_matches_peek() {
        let mut d = dev(64);
        d.write(8, b"word-kernel", WriteMode::Raw).unwrap();
        let mut buf = [0u8; 11];
        d.peek_into(8, &mut buf).unwrap();
        assert_eq!(&buf, b"word-kernel");
        assert_eq!(d.stats().read_ops, 0);
        assert!(matches!(
            d.peek_into(60, &mut buf),
            Err(NvmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn raw_write_wears_every_bit_of_the_range() {
        let mut d = NvmDevice::new(NvmConfig::default().with_size(64).with_bit_wear(true));
        // Unaligned 11-byte Raw write: all 88 bits must wear exactly once,
        // changed or not.
        d.write(3, &[0xA5u8; 11], WriteMode::Raw).unwrap();
        let bits = d.wear().bit_flips().unwrap();
        for (i, &b) in bits.iter().enumerate() {
            let expect = u16::from((3 * 8..14 * 8).contains(&i));
            assert_eq!(b, expect, "bit {i}");
        }
    }

    #[test]
    fn diff_write_wear_matches_flips_on_unaligned_tail() {
        let mut d = NvmDevice::new(NvmConfig::default().with_size(64).with_bit_wear(true));
        d.write(0, &[0x00u8; 13], WriteMode::Raw).unwrap();
        d.reset_wear();
        // 13-byte diff (one full word + 5-byte tail across two words).
        let mut new = [0x00u8; 13];
        new[0] = 0b0000_0110; // bits 1,2 of byte 0
        new[12] = 0b1000_0000; // bit 7 of byte 12
        let s = d.write(0, &new, WriteMode::Diff).unwrap();
        assert_eq!(s.bit_flips, 3);
        let bits = d.wear().bit_flips().unwrap();
        let worn: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(worn, vec![1, 2, 12 * 8 + 7]);
    }

    #[test]
    fn peek_does_not_count_reads() {
        let mut d = dev(64);
        d.peek(0, 8).unwrap();
        assert_eq!(d.stats().read_ops, 0);
        d.read(0, 8).unwrap();
        assert_eq!(d.stats().read_ops, 1);
    }

    fn file_cfg(name: &str, size: usize) -> (NvmConfig, std::path::PathBuf) {
        let path = std::env::temp_dir().join(format!("pnw_dev_{}_{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = NvmConfig::default()
            .with_size(size)
            .with_backing(DeviceBacking::File(path.clone()));
        (cfg, path)
    }

    #[test]
    fn file_backed_write_through_roundtrip() {
        let (cfg, path) = file_cfg("roundtrip", 256);
        {
            let mut d = NvmDevice::open(cfg.clone()).unwrap();
            assert!(d.is_file_backed());
            d.write(16, b"survives the kill", WriteMode::Diff).unwrap();
            d.write(64, &[0xC3u8; 8], WriteMode::Raw).unwrap();
            d.sync().unwrap();
            // No close/drop hook: write-through means the file is already
            // up to date when the process dies here.
        }
        let d2 = NvmDevice::open(cfg).unwrap();
        assert_eq!(d2.peek(16, 17).unwrap(), b"survives the kill");
        assert_eq!(d2.peek(64, 8).unwrap(), &[0xC3u8; 8]);
        assert_eq!(d2.peek(0, 16).unwrap(), &[0u8; 16]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_backed_diff_flushes_only_dirty_words() {
        let (cfg, path) = file_cfg("diffdirty", 256);
        {
            let mut d = NvmDevice::open(cfg.clone()).unwrap();
            d.write(0, &[0x11u8; 64], WriteMode::Raw).unwrap();
            // Dirty two non-adjacent words: the flush must coalesce runs
            // correctly and still land both in the file.
            let mut new = [0x11u8; 64];
            new[0] = 0xFF;
            new[40] = 0x00;
            let s = d.write(0, &new, WriteMode::Diff).unwrap();
            assert_eq!(s.words_written, 2);
        }
        let d2 = NvmDevice::open(cfg).unwrap();
        assert_eq!(d2.peek(0, 1).unwrap(), &[0xFF]);
        assert_eq!(d2.peek(40, 1).unwrap(), &[0x00]);
        assert_eq!(d2.peek(1, 39).unwrap(), &[0x11u8; 39]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_backed_torn_write_persists_prefix_only() {
        let (cfg, path) = file_cfg("torn", 256);
        {
            let mut d = NvmDevice::open(cfg.clone()).unwrap();
            d.arm_torn_write(1); // only the first 8-byte word persists
            d.write(32, &[0xABu8; 24], WriteMode::Raw).unwrap();
            assert!(d.is_crashed());
            // Process dies here without recovery — the file must hold
            // exactly the torn prefix.
        }
        let d2 = NvmDevice::open(cfg).unwrap();
        assert_eq!(d2.peek(32, 8).unwrap(), &[0xABu8; 8]);
        assert_eq!(d2.peek(40, 16).unwrap(), &[0u8; 16]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn restore_counters_round_trip() {
        let mut d = NvmDevice::new(NvmConfig::default().with_size(64).with_bit_wear(true));
        d.write(0, &[0xFFu8; 16], WriteMode::Raw).unwrap();
        let stats = d.stats().clone();
        let words = d.wear().word_writes().to_vec();
        let bits = d.wear().bit_flips().unwrap().to_vec();

        let mut d2 = NvmDevice::new(NvmConfig::default().with_size(64).with_bit_wear(true));
        d2.restore_stats(stats.clone());
        d2.restore_wear(&words, Some(&bits));
        assert_eq!(d2.stats(), &stats);
        assert_eq!(d2.wear().word_writes(), words.as_slice());
        assert_eq!(d2.wear().bit_flips().unwrap(), bits.as_slice());
    }

    #[test]
    #[should_panic(expected = "file-backed devices must be created with NvmDevice::open")]
    fn new_rejects_file_backing() {
        let (cfg, _path) = file_cfg("newpanic", 64);
        let _ = NvmDevice::new(cfg);
    }

    #[test]
    fn armed_stuck_bit_corrupts_at_rest_data_and_resists_writes() {
        let mut d = dev(256);
        d.write(0, &[0x00u8; 8], WriteMode::Raw).unwrap();
        // Arm bit 3 of word 0 stuck-at-1: the image flips immediately.
        d.arm_stuck_bit(0, 3, true).unwrap();
        assert_eq!(d.peek(0, 1).unwrap()[0], 0b0000_1000);
        assert_eq!(d.stuck_bit_count(), 1);
        // Writes cannot clear it; all other bits still program fine.
        d.write(0, &[0x00u8; 8], WriteMode::Diff).unwrap();
        assert_eq!(d.peek(0, 1).unwrap()[0], 0b0000_1000);
        d.write(0, &[0xF0u8; 8], WriteMode::Diff).unwrap();
        assert_eq!(d.peek(0, 1).unwrap()[0], 0xF8);
        // The lock-free view serves the stuck value too.
        let mut buf = [0u8; 1];
        assert!(d.cell_view().read_into(0, &mut buf));
        assert_eq!(buf[0], 0xF8);
        // Stuck-at-0 on an occupied cell clears it.
        d.arm_stuck_bit(0, 7, false).unwrap();
        assert_eq!(d.peek(0, 1).unwrap()[0], 0x78);
        assert_eq!(d.stuck_bits_in(0, 8), 2);
        assert_eq!(d.stuck_bits_in(8, 8), 0);
    }

    #[test]
    fn arm_stuck_bit_bounds_checked() {
        let mut d = dev(64);
        assert!(matches!(
            d.arm_stuck_bit(8, 0, true),
            Err(NvmError::OutOfBounds { .. })
        ));
        assert!(matches!(
            d.arm_stuck_bit(0, 64, true),
            Err(NvmError::OutOfBounds { .. })
        ));
        assert!(d.arm_stuck_bit(7, 63, true).is_ok());
    }

    #[test]
    fn file_backed_stuck_bit_lands_in_the_file() {
        let (cfg, path) = file_cfg("stuck", 128);
        {
            let mut d = NvmDevice::open(cfg.clone()).unwrap();
            d.write(0, &[0xFFu8; 8], WriteMode::Raw).unwrap();
            d.arm_stuck_bit(0, 0, false).unwrap();
            // A later write over the word must not resurrect the bit in
            // the file either.
            d.write(0, &[0xFFu8; 8], WriteMode::Diff).unwrap();
        }
        let d2 = NvmDevice::open(cfg).unwrap();
        assert_eq!(d2.peek(0, 1).unwrap()[0], 0xFE);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn wear_latching_fires_past_endurance_and_keeps_written_value() {
        use crate::fault::StuckAtConfig;
        let mut d = NvmDevice::new(NvmConfig::default().with_size(64).with_stuck_at(
            StuckAtConfig {
                endurance_writes: Some(4),
                latch_probability: 1.0,
                ..Default::default()
            },
        ));
        // Distinct patterns so every write dirties the word (clean diffs
        // don't consume endurance).
        for i in 1..4u8 {
            d.write(0, &[i; 8], WriteMode::Diff).unwrap();
        }
        assert_eq!(d.stuck_bit_count(), 0, "under endurance: pristine");
        d.write(0, &[0xAA; 8], WriteMode::Diff).unwrap();
        assert_eq!(d.stuck_bit_count(), 1, "4th write latches");
        // The latched bit froze at the just-written value, so the image
        // still reads back exactly what was acked.
        assert_eq!(d.peek(0, 8).unwrap(), &[0xAA; 8]);
        // Determinism: a replay with the same seed latches the same bit.
        let mut d2 = NvmDevice::new(NvmConfig::default().with_size(64).with_stuck_at(
            StuckAtConfig {
                endurance_writes: Some(4),
                latch_probability: 1.0,
                ..Default::default()
            },
        ));
        for i in 1..4u8 {
            d2.write(0, &[i; 8], WriteMode::Diff).unwrap();
        }
        d2.write(0, &[0xAA; 8], WriteMode::Diff).unwrap();
        assert_eq!(
            d.fault.stuck_word(0).unwrap(),
            d2.fault.stuck_word(0).unwrap()
        );
    }

    #[test]
    fn disarmed_stuck_machinery_is_invisible() {
        let mut a = dev(256);
        let mut b = dev(256);
        for i in 0..50u64 {
            let v = i.to_le_bytes();
            let sa = a.write((i as usize % 4) * 8, &v, WriteMode::Diff).unwrap();
            let sb = b.write((i as usize % 4) * 8, &v, WriteMode::Diff).unwrap();
            assert_eq!(sa, sb);
        }
        assert_eq!(a.to_image(), b.to_image());
        assert_eq!(a.stuck_bit_count(), 0);
    }

    #[test]
    fn cell_view_reads_match_peek() {
        let mut d = dev(256);
        d.write(3, b"view me through the cell seam", WriteMode::Raw)
            .unwrap();
        let v = d.cell_view();
        assert_eq!(v.len(), 256);
        // Unaligned start, crosses word boundaries.
        let mut buf = [0u8; 29];
        assert!(v.read_into(3, &mut buf));
        assert_eq!(&buf, b"view me through the cell seam");
        // Aligned word-granular read.
        let mut w = [0u8; 16];
        assert!(v.read_into(8, &mut w));
        assert_eq!(&w[..], d.peek(8, 16).unwrap());
        // Out of bounds is a clean false, not a fault.
        assert!(!v.read_into(250, &mut w));
        assert!(!v.read_into(usize::MAX, &mut w));
    }

    #[test]
    fn cell_view_sees_writes_made_after_creation() {
        let mut d = dev(64);
        let v = d.cell_view();
        d.write(0, &[0xAB; 8], WriteMode::Diff).unwrap();
        let mut buf = [0u8; 8];
        assert!(v.read_into(0, &mut buf));
        assert_eq!(buf, [0xAB; 8]);
    }

    #[test]
    fn clone_detaches_cell_views() {
        let mut d = dev(64);
        d.write(0, &[0x11; 8], WriteMode::Raw).unwrap();
        let mut d2 = d.clone();
        let v = d.cell_view();
        d2.write(0, &[0x22; 8], WriteMode::Diff).unwrap();
        let mut buf = [0u8; 8];
        assert!(v.read_into(0, &mut buf));
        // The original's view must not observe the clone's writes.
        assert_eq!(buf, [0x11; 8]);
        assert_eq!(d2.peek(0, 8).unwrap(), &[0x22; 8]);
    }
}
