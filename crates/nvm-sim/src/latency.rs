//! Latency modeling from Table I of the paper plus the 3D-XPoint figure used
//! in the evaluation (§VI-A assumes 600 ns accesses, citing Izraelevitz et
//! al.).
//!
//! The paper computes end-to-end write latency from the number of cache lines
//! written per item (§VI-E): *"The write latency is calculated based on the
//! number of cache lines that are written per item"*. [`LatencyModel`]
//! implements that: a per-operation base cost plus per-line read and write
//! costs.

use std::time::Duration;

use crate::stats::WriteStats;

/// Memory technologies from Table I with their characteristic latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTech {
    /// Spinning disk: ~5 ms access, effectively unlimited endurance.
    Hdd,
    /// DRAM: 50–60 ns symmetric.
    Dram,
    /// Phase-change memory: 50–70 ns reads, 120–150 ns writes, 1e8–1e9
    /// endurance.
    Pcm,
    /// Resistive RAM: 10 ns reads, 50 ns writes, 1e11 endurance.
    ReRam,
    /// SLC flash: 25 µs reads, 500 µs writes, 1e4–1e5 endurance.
    SlcFlash,
    /// STT-RAM: 10–35 ns reads, 50 ns writes, ≥1e15 endurance.
    SttRam,
    /// Intel 3D-XPoint / Optane as measured by Izraelevitz et al. — the
    /// 600 ns access latency assumed in §VI-A.
    Xpoint,
}

impl MemoryTech {
    /// Representative read latency (midpoint of the Table I range).
    pub fn read_latency(&self) -> Duration {
        match self {
            MemoryTech::Hdd => Duration::from_millis(5),
            MemoryTech::Dram => Duration::from_nanos(55),
            MemoryTech::Pcm => Duration::from_nanos(60),
            MemoryTech::ReRam => Duration::from_nanos(10),
            MemoryTech::SlcFlash => Duration::from_micros(25),
            MemoryTech::SttRam => Duration::from_nanos(22),
            MemoryTech::Xpoint => Duration::from_nanos(300),
        }
    }

    /// Representative write latency (midpoint of the Table I range).
    pub fn write_latency(&self) -> Duration {
        match self {
            MemoryTech::Hdd => Duration::from_millis(5),
            MemoryTech::Dram => Duration::from_nanos(55),
            MemoryTech::Pcm => Duration::from_nanos(135),
            MemoryTech::ReRam => Duration::from_nanos(50),
            MemoryTech::SlcFlash => Duration::from_micros(500),
            MemoryTech::SttRam => Duration::from_nanos(50),
            MemoryTech::Xpoint => Duration::from_nanos(600),
        }
    }

    /// Order-of-magnitude write endurance (writes before wear-out), from
    /// Table I. Used by lifetime-projection helpers.
    pub fn endurance_writes(&self) -> f64 {
        match self {
            MemoryTech::Hdd => 1e15,
            MemoryTech::Dram => 1e16,
            MemoryTech::Pcm => 5e8,
            MemoryTech::ReRam => 1e11,
            MemoryTech::SlcFlash => 5e4,
            MemoryTech::SttRam => 1e15,
            MemoryTech::Xpoint => 1e10,
        }
    }
}

/// Converts write statistics into modeled access latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cost charged per cache line read before writing (RBW traffic).
    pub line_read: Duration,
    /// Cost charged per cache line written back.
    pub line_write: Duration,
}

impl LatencyModel {
    /// Model for a given memory technology.
    pub fn for_tech(tech: MemoryTech) -> Self {
        LatencyModel {
            line_read: tech.read_latency(),
            line_write: tech.write_latency(),
        }
    }

    /// The evaluation default: 3D-XPoint at 600 ns writes (§VI-A).
    pub fn xpoint() -> Self {
        Self::for_tech(MemoryTech::Xpoint)
    }

    /// Modeled latency of one write operation.
    pub fn write_cost(&self, s: &WriteStats) -> Duration {
        self.line_read * s.lines_read as u32 + self.line_write * s.lines_written as u32
    }

    /// Modeled latency of reading `lines` cache lines.
    pub fn read_cost(&self, lines: u64) -> Duration {
        self.line_read * lines as u32
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::xpoint()
    }
}

/// Projects device lifetime: given a wear-limited technology and the maximum
/// per-word write count observed after `ops` operations, estimates how many
/// total operations the device survives before its hottest word wears out.
///
/// This is the lifetime-extension argument of the paper made quantitative:
/// halving the hottest word's write rate doubles projected lifetime.
///
/// Returns `INFINITY` when there is no data to project from: no word ever
/// written (`max_word_writes == 0`) **or** no operations observed
/// (`ops == 0`). The `ops` guard is explicit — the old `ops.max(1)` clamp
/// silently projected a finite lifetime from an empty measurement window,
/// which read as "this device is dying" on freshly reset stats.
pub fn projected_lifetime_ops(tech: MemoryTech, max_word_writes: u32, ops: u64) -> f64 {
    if max_word_writes == 0 || ops == 0 {
        return f64::INFINITY;
    }
    let writes_per_op = max_word_writes as f64 / ops as f64;
    tech.endurance_writes() / writes_per_op
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xpoint_write_is_600ns() {
        assert_eq!(MemoryTech::Xpoint.write_latency(), Duration::from_nanos(600));
    }

    #[test]
    fn pcm_write_slower_than_read() {
        assert!(MemoryTech::Pcm.write_latency() > MemoryTech::Pcm.read_latency());
    }

    #[test]
    fn dram_symmetric() {
        assert_eq!(
            MemoryTech::Dram.read_latency(),
            MemoryTech::Dram.write_latency()
        );
    }

    #[test]
    fn write_cost_scales_with_lines() {
        let m = LatencyModel::xpoint();
        let s1 = WriteStats {
            lines_written: 1,
            lines_read: 1,
            ..Default::default()
        };
        let s4 = WriteStats {
            lines_written: 4,
            lines_read: 1,
            ..Default::default()
        };
        assert!(m.write_cost(&s4) > m.write_cost(&s1));
        assert_eq!(
            m.write_cost(&s1),
            Duration::from_nanos(300) + Duration::from_nanos(600)
        );
    }

    #[test]
    fn zero_lines_costs_nothing() {
        let m = LatencyModel::xpoint();
        assert_eq!(m.write_cost(&WriteStats::default()), Duration::ZERO);
    }

    #[test]
    fn lifetime_projection_inverse_in_hotness() {
        let a = projected_lifetime_ops(MemoryTech::Pcm, 10, 1000);
        let b = projected_lifetime_ops(MemoryTech::Pcm, 5, 1000);
        assert!((b / a - 2.0).abs() < 1e-9);
        assert!(projected_lifetime_ops(MemoryTech::Pcm, 0, 1000).is_infinite());
    }

    #[test]
    fn lifetime_projection_zero_ops_is_no_data_not_doom() {
        // Wear observed but zero ops in the window (freshly reset stats):
        // no projection, not a bogus finite one.
        assert!(projected_lifetime_ops(MemoryTech::Pcm, 10, 0).is_infinite());
        assert!(projected_lifetime_ops(MemoryTech::Pcm, 0, 0).is_infinite());
        // One write per op: lifetime is exactly the endurance budget.
        let one = projected_lifetime_ops(MemoryTech::Pcm, 1, 1);
        assert!((one - MemoryTech::Pcm.endurance_writes()).abs() < 1e-3);
    }

    #[test]
    fn endurance_ordering_matches_table1() {
        assert!(MemoryTech::Pcm.endurance_writes() < MemoryTech::ReRam.endurance_writes());
        assert!(MemoryTech::SlcFlash.endurance_writes() < MemoryTech::Pcm.endurance_writes());
        assert!(MemoryTech::Dram.endurance_writes() >= 1e15);
    }
}
