//! Wear tracking: per-word write counts and per-bit flip counts.
//!
//! §VI-G of the paper studies wear-leveling with two cumulative distribution
//! functions:
//!
//! * Figure 12 — the number of times each *address* (word) in the data zone
//!   was written;
//! * Figure 13 — the number of times each *bit* was flipped.
//!
//! [`WearTracker`] maintains both counters (bit-level tracking is optional
//! because it costs one byte of DRAM per emulated NVM bit) and [`WearCdf`]
//! turns a counter array into the CDF series the figures plot.

/// Per-word and optional per-bit wear counters for a device of fixed size.
#[derive(Debug, Clone)]
pub struct WearTracker {
    word_bytes: usize,
    /// Writes per word. Saturating.
    word_writes: Vec<u32>,
    /// Flips per bit (saturating u16, enough for every experiment in the
    /// paper where maxima are in the tens). `None` when disabled.
    bit_flips: Option<Vec<u16>>,
}

impl WearTracker {
    /// Creates a tracker for `size` bytes of memory with the given word size.
    ///
    /// `track_bits` enables per-bit counters (costs `2 * size * 8` bytes of
    /// DRAM).
    pub fn new(size: usize, word_bytes: usize, track_bits: bool) -> Self {
        assert!(word_bytes > 0);
        let words = size.div_ceil(word_bytes);
        WearTracker {
            word_bytes,
            word_writes: vec![0; words],
            bit_flips: track_bits.then(|| vec![0u16; size * 8]),
        }
    }

    /// Whether per-bit tracking is enabled.
    pub fn tracks_bits(&self) -> bool {
        self.bit_flips.is_some()
    }

    /// Records that the word containing byte `addr` was written once.
    #[inline]
    pub fn record_word_write(&mut self, word_index: usize) {
        if let Some(w) = self.word_writes.get_mut(word_index) {
            *w = w.saturating_add(1);
        }
    }

    /// Records a flip of bit `bit` (0..8) of byte `addr`.
    #[inline]
    pub fn record_bit_flip(&mut self, addr: usize, bit: u32) {
        if let Some(bits) = self.bit_flips.as_mut() {
            let idx = addr * 8 + bit as usize;
            if let Some(b) = bits.get_mut(idx) {
                *b = b.saturating_add(1);
            }
        }
    }

    /// Records one flip per set bit of `xor`, interpreted as the
    /// little-endian XOR of up to 8 bytes starting at byte `addr` — the
    /// per-bit counters are byte-major LSB-first, so bit `b` of the word
    /// maps directly to counter index `addr*8 + b`. One call covers a whole
    /// device word; the bit-scan only visits set bits.
    #[inline]
    pub fn record_word_flips(&mut self, addr: usize, mut xor: u64) {
        if let Some(bits) = self.bit_flips.as_mut() {
            let base = addr * 8;
            while xor != 0 {
                let b = xor.trailing_zeros() as usize;
                if let Some(slot) = bits.get_mut(base + b) {
                    *slot = slot.saturating_add(1);
                }
                xor &= xor - 1;
            }
        }
    }

    /// Records one flip on *every* bit of the `len` bytes starting at
    /// `addr` — a Raw write programs every cell. One call per range instead
    /// of one per bit.
    #[inline]
    pub fn record_range_flips(&mut self, addr: usize, len: usize) {
        if let Some(bits) = self.bit_flips.as_mut() {
            let a = (addr * 8).min(bits.len());
            let b = ((addr + len) * 8).min(bits.len());
            for slot in &mut bits[a..b] {
                *slot = slot.saturating_add(1);
            }
        }
    }

    /// Writes-per-word counter slice.
    pub fn word_writes(&self) -> &[u32] {
        &self.word_writes
    }

    /// Flips-per-bit counter slice, if tracking is enabled.
    pub fn bit_flips(&self) -> Option<&[u16]> {
        self.bit_flips.as_deref()
    }

    /// Maximum writes observed on any single word.
    pub fn max_word_writes(&self) -> u32 {
        self.word_writes.iter().copied().max().unwrap_or(0)
    }

    /// CDF of per-word write counts over the byte range
    /// `[start, start+len)` (restricting to e.g. the data zone, as the paper
    /// does). Pass the whole device range for a global view.
    pub fn word_cdf(&self, start: usize, len: usize) -> WearCdf {
        let a = start / self.word_bytes;
        let b = (start + len).div_ceil(self.word_bytes).min(self.word_writes.len());
        WearCdf::from_counts_u32(&self.word_writes[a.min(b)..b])
    }

    /// CDF of per-bit flip counts over byte range `[start, start+len)`.
    ///
    /// Returns `None` when bit tracking is disabled.
    pub fn bit_cdf(&self, start: usize, len: usize) -> Option<WearCdf> {
        let bits = self.bit_flips.as_ref()?;
        let a = (start * 8).min(bits.len());
        let b = ((start + len) * 8).min(bits.len());
        Some(WearCdf::from_counts_u16(&bits[a..b]))
    }

    /// Restores counters persisted in a checkpoint, overwriting the current
    /// values. Bit counters are restored only when this tracker has bit
    /// tracking enabled *and* the checkpoint carried them; a tracker opened
    /// without bit tracking silently drops persisted bit counters (they can
    /// be re-enabled on a later run, starting from zero).
    ///
    /// # Panics
    /// Panics if a provided slice's length does not match this tracker's
    /// geometry.
    pub fn restore(&mut self, word_writes: &[u32], bit_flips: Option<&[u16]>) {
        assert_eq!(
            word_writes.len(),
            self.word_writes.len(),
            "word counter length mismatch"
        );
        self.word_writes.copy_from_slice(word_writes);
        if let (Some(mine), Some(theirs)) = (self.bit_flips.as_mut(), bit_flips) {
            assert_eq!(theirs.len(), mine.len(), "bit counter length mismatch");
            mine.copy_from_slice(theirs);
        }
    }

    /// Clears all counters (used between experiment phases).
    pub fn reset(&mut self) {
        self.word_writes.fill(0);
        if let Some(b) = self.bit_flips.as_mut() {
            b.fill(0);
        }
    }

    /// Accumulates another tracker's counters into this one, elementwise.
    ///
    /// Both trackers must describe the same geometry (same word size and
    /// cell count); this models two traffic streams hitting one physical
    /// address space — e.g. folding separate measurement windows, or
    /// mirrored replicas of one device, into a combined view. (Shards of a
    /// sharded store cover *disjoint* slices with differently-sized
    /// trackers — aggregate those with [`WearCdf::merge`] instead.)
    ///
    /// # Panics
    /// Panics if the geometries differ.
    pub fn absorb(&mut self, other: &WearTracker) {
        assert_eq!(self.word_bytes, other.word_bytes, "word size mismatch");
        assert_eq!(
            self.word_writes.len(),
            other.word_writes.len(),
            "tracker size mismatch"
        );
        for (a, b) in self.word_writes.iter_mut().zip(&other.word_writes) {
            *a = a.saturating_add(*b);
        }
        if let (Some(mine), Some(theirs)) = (self.bit_flips.as_mut(), other.bit_flips.as_ref()) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a = a.saturating_add(*b);
            }
        }
    }
}

/// An empirical CDF over wear counts: `p(x) = P(count <= x)`.
///
/// This is exactly the series Figures 12/13 plot.
#[derive(Debug, Clone, PartialEq)]
pub struct WearCdf {
    /// Sorted distinct count values.
    pub values: Vec<u32>,
    /// Cumulative probability at each value.
    pub cumulative: Vec<f64>,
    /// Number of cells observed.
    pub population: usize,
}

impl WearCdf {
    fn from_histogram(hist: &[u64], population: usize) -> Self {
        let mut values = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0u64;
        for (v, &n) in hist.iter().enumerate() {
            if n == 0 && !(v == 0 && population > 0) {
                continue;
            }
            acc += n;
            values.push(v as u32);
            cumulative.push(acc as f64 / population.max(1) as f64);
        }
        WearCdf {
            values,
            cumulative,
            population,
        }
    }

    /// Builds a CDF from u32 counters.
    pub fn from_counts_u32(counts: &[u32]) -> Self {
        let max = counts.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0u64; max + 1];
        for &c in counts {
            hist[c as usize] += 1;
        }
        Self::from_histogram(&hist, counts.len())
    }

    /// Builds a CDF from u16 counters.
    pub fn from_counts_u16(counts: &[u16]) -> Self {
        let max = counts.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0u64; max + 1];
        for &c in counts {
            hist[c as usize] += 1;
        }
        Self::from_histogram(&hist, counts.len())
    }

    /// `P(count <= x)` — e.g. the paper reports `P(X <= 5) = 0.85` for
    /// Figure 12a.
    pub fn probability_le(&self, x: u32) -> f64 {
        match self.values.binary_search(&x) {
            Ok(i) => self.cumulative[i],
            Err(0) => 0.0,
            Err(i) => self.cumulative[i - 1],
        }
    }

    /// Smallest count value `x` with `P(count <= x) >= p` (a quantile).
    pub fn quantile(&self, p: f64) -> u32 {
        for (v, c) in self.values.iter().zip(&self.cumulative) {
            if *c >= p {
                return *v;
            }
        }
        self.values.last().copied().unwrap_or(0)
    }

    /// Largest observed count.
    pub fn max(&self) -> u32 {
        self.values.last().copied().unwrap_or(0)
    }

    /// Per-value cell counts recovered from the cumulative series.
    ///
    /// Exact as long as the population fits in 52 bits (cumulative
    /// probabilities are stored as `acc / population`, so `cum * population`
    /// round-trips the integer accumulator).
    fn counts(&self) -> Vec<(u32, u64)> {
        let mut prev = 0u64;
        self.values
            .iter()
            .zip(&self.cumulative)
            .map(|(&v, &c)| {
                let acc = (c * self.population as f64).round() as u64;
                let n = acc - prev;
                prev = acc;
                (v, n)
            })
            .collect()
    }

    /// CDF of the union of two cell populations.
    ///
    /// A sharded store keeps one device (and so one wear tracker) per shard
    /// over disjoint slices of the logical address space; merging the
    /// per-shard CDFs yields exactly the Figure 12/13 curve a single device
    /// spanning all shards would report.
    pub fn merge(&self, other: &WearCdf) -> WearCdf {
        let max = self.max().max(other.max()) as usize;
        let population = self.population + other.population;
        if population == 0 {
            return WearCdf::from_counts_u32(&[]);
        }
        let mut hist = vec![0u64; max + 1];
        for (v, n) in self.counts().into_iter().chain(other.counts()) {
            hist[v as usize] += n;
        }
        WearCdf::from_histogram(&hist, population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_writes_are_recorded() {
        let mut t = WearTracker::new(64, 8, false);
        t.record_word_write(0);
        t.record_word_write(0);
        t.record_word_write(3);
        assert_eq!(t.word_writes()[0], 2);
        assert_eq!(t.word_writes()[3], 1);
        assert_eq!(t.max_word_writes(), 2);
    }

    #[test]
    fn bit_tracking_disabled_by_default_path() {
        let mut t = WearTracker::new(64, 8, false);
        t.record_bit_flip(0, 3); // must be a no-op, not a panic
        assert!(t.bit_flips().is_none());
        assert!(t.bit_cdf(0, 64).is_none());
    }

    #[test]
    fn bit_tracking_enabled() {
        let mut t = WearTracker::new(16, 8, true);
        t.record_bit_flip(0, 0);
        t.record_bit_flip(0, 0);
        t.record_bit_flip(1, 7);
        let bits = t.bit_flips().unwrap();
        assert_eq!(bits[0], 2);
        assert_eq!(bits[15], 1);
    }

    #[test]
    fn word_flips_match_per_bit_recording() {
        let mut a = WearTracker::new(16, 8, true);
        let mut b = WearTracker::new(16, 8, true);
        let xor = 0x8000_0000_0000_A501u64; // bits across several bytes
        a.record_word_flips(3, xor);
        for bit in 0..64u32 {
            if xor >> bit & 1 == 1 {
                b.record_bit_flip(3 + bit as usize / 8, bit % 8);
            }
        }
        assert_eq!(a.bit_flips(), b.bit_flips());
        // Disabled tracking: a no-op, not a panic.
        let mut c = WearTracker::new(16, 8, false);
        c.record_word_flips(0, u64::MAX);
        assert!(c.bit_flips().is_none());
    }

    #[test]
    fn range_flips_cover_every_bit_once() {
        let mut t = WearTracker::new(16, 8, true);
        t.record_range_flips(2, 3);
        let bits = t.bit_flips().unwrap();
        for (i, &b) in bits.iter().enumerate() {
            let expect = u16::from((16..40).contains(&i));
            assert_eq!(b, expect, "bit {i}");
        }
        // Out-of-range tail is clamped, not panicked.
        t.record_range_flips(14, 10);
        assert_eq!(t.bit_flips().unwrap()[127], 1);
    }

    #[test]
    fn cdf_probabilities() {
        // counts: 0,0,1,2 -> P(<=0)=0.5, P(<=1)=0.75, P(<=2)=1.0
        let cdf = WearCdf::from_counts_u32(&[0, 0, 1, 2]);
        assert_eq!(cdf.population, 4);
        assert!((cdf.probability_le(0) - 0.5).abs() < 1e-12);
        assert!((cdf.probability_le(1) - 0.75).abs() < 1e-12);
        assert!((cdf.probability_le(2) - 1.0).abs() < 1e-12);
        assert!((cdf.probability_le(100) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.max(), 2);
    }

    #[test]
    fn cdf_quantile() {
        let cdf = WearCdf::from_counts_u32(&[0, 1, 1, 5]);
        assert_eq!(cdf.quantile(0.25), 0);
        assert_eq!(cdf.quantile(0.75), 1);
        assert_eq!(cdf.quantile(1.0), 5);
    }

    #[test]
    fn word_cdf_restricts_to_range() {
        let mut t = WearTracker::new(64, 8, false);
        for w in 0..4 {
            for _ in 0..w {
                t.record_word_write(w);
            }
        }
        // Words 0..4 have counts 0,1,2,3; restrict to bytes [8,32) -> words 1..4
        let cdf = t.word_cdf(8, 24);
        assert_eq!(cdf.population, 3);
        assert_eq!(cdf.max(), 3);
        assert!((cdf.probability_le(1) - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counters() {
        let mut t = WearTracker::new(64, 8, true);
        t.record_word_write(1);
        t.record_bit_flip(0, 0);
        t.reset();
        assert_eq!(t.max_word_writes(), 0);
        assert!(t.bit_flips().unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn merged_cdf_equals_cdf_of_concatenated_counts() {
        let a = [0u32, 1, 1, 5];
        let b = [2u32, 2, 0];
        let merged = WearCdf::from_counts_u32(&a).merge(&WearCdf::from_counts_u32(&b));
        let concat: Vec<u32> = a.iter().chain(&b).copied().collect();
        assert_eq!(merged, WearCdf::from_counts_u32(&concat));
        // Merging with an empty population is the identity.
        let empty = WearCdf::from_counts_u32(&[]);
        assert_eq!(empty.merge(&empty).population, 0);
        assert_eq!(
            WearCdf::from_counts_u32(&a).merge(&empty),
            WearCdf::from_counts_u32(&a)
        );
    }

    #[test]
    fn absorb_sums_counters_elementwise() {
        let mut a = WearTracker::new(32, 8, true);
        a.record_word_write(0);
        a.record_bit_flip(0, 1);
        let mut b = WearTracker::new(32, 8, true);
        b.record_word_write(0);
        b.record_word_write(2);
        b.record_bit_flip(0, 1);
        a.absorb(&b);
        assert_eq!(a.word_writes()[0], 2);
        assert_eq!(a.word_writes()[2], 1);
        assert_eq!(a.bit_flips().unwrap()[1], 2);
    }

    #[test]
    fn cdf_of_empty_population() {
        let cdf = WearCdf::from_counts_u32(&[]);
        assert_eq!(cdf.population, 0);
        assert_eq!(cdf.max(), 0);
        assert_eq!(cdf.probability_le(3), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// A wear CDF is a valid distribution function: monotone
        /// non-decreasing and terminating at exactly 1.
        #[test]
        fn cdf_is_a_distribution(counts in proptest::collection::vec(0u32..50, 1..200)) {
            let cdf = WearCdf::from_counts_u32(&counts);
            prop_assert_eq!(cdf.population, counts.len());
            for w in cdf.cumulative.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12);
            }
            prop_assert!((cdf.cumulative.last().unwrap() - 1.0).abs() < 1e-9);
            // probability_le at the max is 1; below the min is < 1 or 0.
            prop_assert!((cdf.probability_le(cdf.max()) - 1.0).abs() < 1e-9);
            // Quantiles are inverse-consistent.
            for p in [0.25, 0.5, 0.9] {
                let q = cdf.quantile(p);
                prop_assert!(cdf.probability_le(q) >= p - 1e-9);
            }
        }
    }
}
