//! Crash and torn-write fault injection.
//!
//! NVM stores must be failure-atomic (§I discusses logging/shadowing
//! overheads). The stores in this reproduction are tested against three
//! fault models:
//!
//! * **power failure** between operations ([`FaultState::crash`]) — the
//!   device retains everything persisted so far and rejects further I/O;
//! * **torn write** ([`FaultState::arm_torn`]) — a crash *during* a write:
//!   only a prefix of the payload's words reaches the array (PCM programs at
//!   word granularity, so word-aligned tearing is the realistic model);
//! * **torn metadata write** ([`FaultState::arm_meta_tear`]) — the same
//!   mid-write crash landing in one of the durability layer's *files*
//!   instead of the cell array: a superblock replica, a WAL record frame,
//!   or a checkpoint body. File writes tear at byte granularity (there is
//!   no word-programming hardware under a filesystem), which is the
//!   harsher model — recovery must survive a frame cut at any byte.

/// Static fault-injection configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// If set, the n-th write (0-based) tears after this many words and the
    /// device crashes. Mostly useful for deterministic test setups; tests
    /// can also arm tears imperatively via the device.
    pub tear_write_at: Option<(u64, usize)>,
}

/// Which durable *file* a metadata write targets — the three write sites
/// of the durability layer, each with its own recovery obligation:
///
/// * a torn [`MetaTarget::Superblock`] replica must lose the election to
///   the other (CRC-valid) replica;
/// * a torn [`MetaTarget::Wal`] record must end replay exactly at the
///   previous record (the op it framed was never acknowledged);
/// * a torn [`MetaTarget::Checkpoint`] body must fail its CRC and leave
///   the superblock pointing at the previous checkpoint epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaTarget {
    /// One of the two replicated superblock slots.
    Superblock,
    /// An append-only write-ahead-log record frame.
    Wal,
    /// A checkpoint body (written to a temporary file before rename).
    Checkpoint,
}

impl MetaTarget {
    fn index(self) -> usize {
        match self {
            MetaTarget::Superblock => 0,
            MetaTarget::Wal => 1,
            MetaTarget::Checkpoint => 2,
        }
    }
}

/// An armed metadata tear: the `(skip + 1)`-th write to `target` persists
/// only `keep_bytes` of its payload, then the state crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaTear {
    /// Which file kind the tear lands in.
    pub target: MetaTarget,
    /// How many writes to that target pass through untouched first.
    pub skip: u64,
    /// Bytes of the torn write's payload that reach the file.
    pub keep_bytes: usize,
}

/// Mutable fault state carried by a device (and, via a shared handle, by
/// the durability layer's metadata writers).
#[derive(Debug, Clone)]
pub struct FaultState {
    crashed: bool,
    armed_torn_words: Option<usize>,
    armed_meta: Option<MetaTear>,
    writes_seen: u64,
    /// Per-target metadata write counters, indexed by [`MetaTarget::index`].
    meta_writes_seen: [u64; 3],
    cfg: FaultConfig,
}

impl FaultState {
    /// Creates the state from a configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultState {
            crashed: false,
            armed_torn_words: None,
            armed_meta: None,
            writes_seen: 0,
            meta_writes_seen: [0; 3],
            cfg,
        }
    }

    /// Whether the device is crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Enters the crashed state.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Leaves the crashed state.
    pub fn recover(&mut self) {
        self.crashed = false;
    }

    /// Arms a torn write for the next write operation: only `words` whole
    /// words will persist.
    pub fn arm_torn(&mut self, words: usize) {
        self.armed_torn_words = Some(words);
    }

    /// Arms a metadata tear (see [`MetaTear`]). Replaces any previously
    /// armed metadata tear.
    pub fn arm_meta_tear(&mut self, tear: MetaTear) {
        self.armed_meta = Some(tear);
    }

    /// Called by the device at the start of each write with the payload
    /// length. Returns `Some(truncated_len)` if this write tears (the device
    /// then also crashes), or `None` for a normal write.
    pub fn arm_write(&mut self, len: usize, word_bytes: usize) -> Option<usize> {
        let scheduled = match self.cfg.tear_write_at {
            Some((n, words)) if n == self.writes_seen => Some(words),
            _ => None,
        };
        self.writes_seen += 1;
        let words = self.armed_torn_words.take().or(scheduled)?;
        self.crashed = true;
        Some((words * word_bytes).min(len))
    }

    /// Called by a durability-layer writer before persisting `len` bytes to
    /// a `target` file. Returns:
    ///
    /// * `Err(NvmError::Crashed)` — the state is already crashed; nothing
    ///   may be written;
    /// * `Ok(None)` — a normal write: persist all `len` bytes;
    /// * `Ok(Some(k))` — this write tears: persist only the first `k`
    ///   bytes, then the state crashes (subsequent calls return `Err`).
    pub fn filter_meta_write(
        &mut self,
        target: MetaTarget,
        len: usize,
    ) -> Result<Option<usize>, crate::NvmError> {
        if self.crashed {
            return Err(crate::NvmError::Crashed);
        }
        self.meta_writes_seen[target.index()] += 1;
        match self.armed_meta {
            Some(tear) if tear.target == target => {
                if tear.skip > 0 {
                    self.armed_meta = Some(MetaTear {
                        skip: tear.skip - 1,
                        ..tear
                    });
                    Ok(None)
                } else {
                    self.armed_meta = None;
                    self.crashed = true;
                    Ok(Some(tear.keep_bytes.min(len)))
                }
            }
            _ => Ok(None),
        }
    }

    /// Metadata writes observed for `target` so far (diagnostics/tests).
    pub fn meta_writes_seen(&self, target: MetaTarget) -> u64 {
        self.meta_writes_seen[target.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_recover_cycle() {
        let mut f = FaultState::new(FaultConfig::default());
        assert!(!f.is_crashed());
        f.crash();
        assert!(f.is_crashed());
        f.recover();
        assert!(!f.is_crashed());
    }

    #[test]
    fn armed_tear_fires_once() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_torn(2);
        assert_eq!(f.arm_write(100, 8), Some(16));
        assert!(f.is_crashed());
        f.recover();
        assert_eq!(f.arm_write(100, 8), None);
    }

    #[test]
    fn tear_truncates_to_payload() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_torn(100);
        assert_eq!(f.arm_write(24, 8), Some(24));
    }

    #[test]
    fn scheduled_tear_fires_on_nth_write() {
        let mut f = FaultState::new(FaultConfig {
            tear_write_at: Some((1, 1)),
        });
        assert_eq!(f.arm_write(64, 8), None);
        assert_eq!(f.arm_write(64, 8), Some(8));
        assert!(f.is_crashed());
    }

    /// The config-scheduled tear observed end-to-end at the *device* level:
    /// a device built with `tear_write_at: Some((n, w))` serves `n` whole
    /// writes, tears the `n`-th at `w` words, and lands in the crashed
    /// state — the long-unused config knob proven against
    /// [`crate::NvmDevice`] itself, not just the state machine.
    #[test]
    fn scheduled_tear_fires_on_nth_device_write() {
        use crate::{NvmConfig, NvmDevice, NvmError, WriteMode};

        let mut cfg = NvmConfig::default().with_size(256);
        cfg.fault = FaultConfig {
            tear_write_at: Some((2, 1)),
        };
        let mut d = NvmDevice::open(cfg).unwrap();

        // Writes 0 and 1 persist fully.
        d.write(0, &[0x11u8; 16], WriteMode::Raw).unwrap();
        d.write(16, &[0x22u8; 16], WriteMode::Raw).unwrap();
        assert!(!d.is_crashed());

        // Write 2 tears after one 8-byte word and crashes the device.
        let s = d.write(32, &[0x33u8; 24], WriteMode::Raw).unwrap();
        assert_eq!(s.words_written, 1);
        assert_eq!(s.bits_addressed, 64, "stats cover only the torn prefix");
        assert!(d.is_crashed());
        assert!(matches!(
            d.write(64, &[0u8; 8], WriteMode::Raw),
            Err(NvmError::Crashed)
        ));

        // After restart the prefix is persisted, the tail never landed and
        // the scheduled tear does not re-fire.
        d.recover();
        assert_eq!(d.peek(32, 8).unwrap(), &[0x33u8; 8]);
        assert_eq!(d.peek(40, 16).unwrap(), &[0u8; 16]);
        d.write(64, &[0x44u8; 8], WriteMode::Raw).unwrap();
        assert!(!d.is_crashed());
    }

    #[test]
    fn meta_tear_skips_then_fires_then_blocks() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_meta_tear(MetaTear {
            target: MetaTarget::Wal,
            skip: 2,
            keep_bytes: 5,
        });
        // Writes to other targets never consume the tear.
        assert_eq!(f.filter_meta_write(MetaTarget::Superblock, 48), Ok(None));
        assert_eq!(f.filter_meta_write(MetaTarget::Checkpoint, 100), Ok(None));
        // Two skipped WAL writes, then the tear fires at 5 bytes.
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Ok(None));
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Ok(None));
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Ok(Some(5)));
        assert!(f.is_crashed());
        // Everything after the crash is refused.
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Err(crate::NvmError::Crashed));
        assert_eq!(f.filter_meta_write(MetaTarget::Superblock, 48), Err(crate::NvmError::Crashed));
        assert_eq!(f.meta_writes_seen(MetaTarget::Wal), 3);
    }

    #[test]
    fn meta_tear_keep_clamps_to_payload() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_meta_tear(MetaTear {
            target: MetaTarget::Checkpoint,
            skip: 0,
            keep_bytes: 1_000_000,
        });
        assert_eq!(f.filter_meta_write(MetaTarget::Checkpoint, 64), Ok(Some(64)));
    }
}
