//! Crash and torn-write fault injection.
//!
//! NVM stores must be failure-atomic (§I discusses logging/shadowing
//! overheads). The stores in this reproduction are tested against two fault
//! models:
//!
//! * **power failure** between operations ([`FaultState::crash`]) — the
//!   device retains everything persisted so far and rejects further I/O;
//! * **torn write** ([`FaultState::arm_torn`]) — a crash *during* a write:
//!   only a prefix of the payload's words reaches the array (PCM programs at
//!   word granularity, so word-aligned tearing is the realistic model).

/// Static fault-injection configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// If set, the n-th write (0-based) tears after this many words and the
    /// device crashes. Mostly useful for deterministic test setups; tests
    /// can also arm tears imperatively via the device.
    pub tear_write_at: Option<(u64, usize)>,
}

/// Mutable fault state carried by a device.
#[derive(Debug, Clone)]
pub struct FaultState {
    crashed: bool,
    armed_torn_words: Option<usize>,
    writes_seen: u64,
    cfg: FaultConfig,
}

impl FaultState {
    /// Creates the state from a configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultState {
            crashed: false,
            armed_torn_words: None,
            writes_seen: 0,
            cfg,
        }
    }

    /// Whether the device is crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Enters the crashed state.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Leaves the crashed state.
    pub fn recover(&mut self) {
        self.crashed = false;
    }

    /// Arms a torn write for the next write operation: only `words` whole
    /// words will persist.
    pub fn arm_torn(&mut self, words: usize) {
        self.armed_torn_words = Some(words);
    }

    /// Called by the device at the start of each write with the payload
    /// length. Returns `Some(truncated_len)` if this write tears (the device
    /// then also crashes), or `None` for a normal write.
    pub fn arm_write(&mut self, len: usize, word_bytes: usize) -> Option<usize> {
        let scheduled = match self.cfg.tear_write_at {
            Some((n, words)) if n == self.writes_seen => Some(words),
            _ => None,
        };
        self.writes_seen += 1;
        let words = self.armed_torn_words.take().or(scheduled)?;
        self.crashed = true;
        Some((words * word_bytes).min(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_recover_cycle() {
        let mut f = FaultState::new(FaultConfig::default());
        assert!(!f.is_crashed());
        f.crash();
        assert!(f.is_crashed());
        f.recover();
        assert!(!f.is_crashed());
    }

    #[test]
    fn armed_tear_fires_once() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_torn(2);
        assert_eq!(f.arm_write(100, 8), Some(16));
        assert!(f.is_crashed());
        f.recover();
        assert_eq!(f.arm_write(100, 8), None);
    }

    #[test]
    fn tear_truncates_to_payload() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_torn(100);
        assert_eq!(f.arm_write(24, 8), Some(24));
    }

    #[test]
    fn scheduled_tear_fires_on_nth_write() {
        let mut f = FaultState::new(FaultConfig {
            tear_write_at: Some((1, 1)),
        });
        assert_eq!(f.arm_write(64, 8), None);
        assert_eq!(f.arm_write(64, 8), Some(8));
        assert!(f.is_crashed());
    }
}
