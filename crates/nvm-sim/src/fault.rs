//! Crash and torn-write fault injection.
//!
//! NVM stores must be failure-atomic (§I discusses logging/shadowing
//! overheads). The stores in this reproduction are tested against three
//! fault models:
//!
//! * **power failure** between operations ([`FaultState::crash`]) — the
//!   device retains everything persisted so far and rejects further I/O;
//! * **torn write** ([`FaultState::arm_torn`]) — a crash *during* a write:
//!   only a prefix of the payload's words reaches the array (PCM programs at
//!   word granularity, so word-aligned tearing is the realistic model);
//! * **torn metadata write** ([`FaultState::arm_meta_tear`]) — the same
//!   mid-write crash landing in one of the durability layer's *files*
//!   instead of the cell array: a superblock replica, a WAL record frame,
//!   or a checkpoint body. File writes tear at byte granularity (there is
//!   no word-programming hardware under a filesystem), which is the
//!   harsher model — recovery must survive a frame cut at any byte;
//! * **stuck-at wear-out** ([`FaultState::arm_stuck_bit`] /
//!   [`StuckAtConfig`]) — worn PCM/ReRAM cells latch: a stuck bit reads
//!   back its latched value and no write can change it. Faults are either
//!   armed explicitly (tests, chaos harnesses) or latched probabilistically
//!   once a word's write count crosses a configured endurance threshold —
//!   the failure mode the paper's flip-minimizing placement is defending
//!   against, finally allowed to bite.

use std::collections::HashMap;

/// SplitMix64 — the deterministic hash behind wear-induced latching.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wear-induced stuck-at latching configuration.
///
/// Disabled by default (`endurance_writes: None`): a device without an
/// endurance threshold never latches on its own, so every existing
/// workload stays bit-for-bit identical. Explicitly armed stuck bits
/// ([`FaultState::arm_stuck_bit`]) work regardless of this configuration.
#[derive(Debug, Clone, Copy)]
pub struct StuckAtConfig {
    /// Write count past which a word's cells may latch. `None` disables
    /// wear-induced latching entirely.
    pub endurance_writes: Option<u32>,
    /// Probability that one write to an over-endurance word latches one
    /// additional bit (evaluated deterministically from `seed`, the word
    /// index and the word's write count).
    pub latch_probability: f64,
    /// Seed for the deterministic latching hash.
    pub seed: u64,
}

impl Default for StuckAtConfig {
    fn default() -> Self {
        StuckAtConfig {
            endurance_writes: None,
            latch_probability: 1.0,
            seed: 0x5AD_B175, // "sad bits"
        }
    }
}

/// The stuck bits of one device word: `mask` selects the latched bits,
/// `vals` holds the value each latched bit is stuck at (bit `i` of the
/// little-endian word image ↔ bit `i` here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StuckWord {
    /// Which bits are latched.
    pub mask: u64,
    /// The latched value of each masked bit.
    pub vals: u64,
}

impl StuckWord {
    /// Overlays the stuck bits onto a word image.
    pub fn apply(&self, word: u64) -> u64 {
        (word & !self.mask) | (self.vals & self.mask)
    }
}

/// Static fault-injection configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// If set, the n-th write (0-based) tears after this many words and the
    /// device crashes. Mostly useful for deterministic test setups; tests
    /// can also arm tears imperatively via the device.
    pub tear_write_at: Option<(u64, usize)>,
    /// Wear-induced stuck-at latching (off by default).
    pub stuck_at: StuckAtConfig,
}

/// Which durable *file* a metadata write targets — the three write sites
/// of the durability layer, each with its own recovery obligation:
///
/// * a torn [`MetaTarget::Superblock`] replica must lose the election to
///   the other (CRC-valid) replica;
/// * a torn [`MetaTarget::Wal`] record must end replay exactly at the
///   previous record (the op it framed was never acknowledged);
/// * a torn [`MetaTarget::Checkpoint`] body must fail its CRC and leave
///   the superblock pointing at the previous checkpoint epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaTarget {
    /// One of the two replicated superblock slots.
    Superblock,
    /// An append-only write-ahead-log record frame.
    Wal,
    /// A checkpoint body (written to a temporary file before rename).
    Checkpoint,
}

impl MetaTarget {
    fn index(self) -> usize {
        match self {
            MetaTarget::Superblock => 0,
            MetaTarget::Wal => 1,
            MetaTarget::Checkpoint => 2,
        }
    }
}

/// An armed metadata tear: the `(skip + 1)`-th write to `target` persists
/// only `keep_bytes` of its payload, then the state crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaTear {
    /// Which file kind the tear lands in.
    pub target: MetaTarget,
    /// How many writes to that target pass through untouched first.
    pub skip: u64,
    /// Bytes of the torn write's payload that reach the file.
    pub keep_bytes: usize,
}

/// Mutable fault state carried by a device (and, via a shared handle, by
/// the durability layer's metadata writers).
#[derive(Debug, Clone)]
pub struct FaultState {
    crashed: bool,
    armed_torn_words: Option<usize>,
    armed_meta: Option<MetaTear>,
    writes_seen: u64,
    /// Per-target metadata write counters, indexed by [`MetaTarget::index`].
    meta_writes_seen: [u64; 3],
    /// Stuck bits by device word index — armed explicitly or latched by
    /// wear. Empty on the overwhelming majority of devices, so the write
    /// path's per-word overlay check is one `is_empty()` away from free.
    stuck: HashMap<usize, StuckWord>,
    cfg: FaultConfig,
}

impl FaultState {
    /// Creates the state from a configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultState {
            crashed: false,
            armed_torn_words: None,
            armed_meta: None,
            writes_seen: 0,
            meta_writes_seen: [0; 3],
            stuck: HashMap::new(),
            cfg,
        }
    }

    /// Whether the device is crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Enters the crashed state.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Leaves the crashed state.
    pub fn recover(&mut self) {
        self.crashed = false;
    }

    /// Arms a torn write for the next write operation: only `words` whole
    /// words will persist.
    pub fn arm_torn(&mut self, words: usize) {
        self.armed_torn_words = Some(words);
    }

    /// Arms a metadata tear (see [`MetaTear`]). Replaces any previously
    /// armed metadata tear.
    pub fn arm_meta_tear(&mut self, tear: MetaTear) {
        self.armed_meta = Some(tear);
    }

    /// Called by the device at the start of each write with the payload
    /// length. Returns `Some(truncated_len)` if this write tears (the device
    /// then also crashes), or `None` for a normal write.
    pub fn arm_write(&mut self, len: usize, word_bytes: usize) -> Option<usize> {
        let scheduled = match self.cfg.tear_write_at {
            Some((n, words)) if n == self.writes_seen => Some(words),
            _ => None,
        };
        self.writes_seen += 1;
        let words = self.armed_torn_words.take().or(scheduled)?;
        self.crashed = true;
        Some((words * word_bytes).min(len))
    }

    /// Called by a durability-layer writer before persisting `len` bytes to
    /// a `target` file. Returns:
    ///
    /// * `Err(NvmError::Crashed)` — the state is already crashed; nothing
    ///   may be written;
    /// * `Ok(None)` — a normal write: persist all `len` bytes;
    /// * `Ok(Some(k))` — this write tears: persist only the first `k`
    ///   bytes, then the state crashes (subsequent calls return `Err`).
    pub fn filter_meta_write(
        &mut self,
        target: MetaTarget,
        len: usize,
    ) -> Result<Option<usize>, crate::NvmError> {
        if self.crashed {
            return Err(crate::NvmError::Crashed);
        }
        self.meta_writes_seen[target.index()] += 1;
        match self.armed_meta {
            Some(tear) if tear.target == target => {
                if tear.skip > 0 {
                    self.armed_meta = Some(MetaTear {
                        skip: tear.skip - 1,
                        ..tear
                    });
                    Ok(None)
                } else {
                    self.armed_meta = None;
                    self.crashed = true;
                    Ok(Some(tear.keep_bytes.min(len)))
                }
            }
            _ => Ok(None),
        }
    }

    /// Metadata writes observed for `target` so far (diagnostics/tests).
    pub fn meta_writes_seen(&self, target: MetaTarget) -> u64 {
        self.meta_writes_seen[target.index()]
    }

    /// Latches `bit` of device word `word` at `stuck_at_one`. The caller
    /// (the device) is responsible for forcing the cell image to match.
    pub fn arm_stuck_bit(&mut self, word: usize, bit: u32, stuck_at_one: bool) {
        debug_assert!(bit < 64, "bit index within one word");
        let e = self.stuck.entry(word).or_default();
        let m = 1u64 << bit;
        e.mask |= m;
        if stuck_at_one {
            e.vals |= m;
        } else {
            e.vals &= !m;
        }
    }

    /// Whether any bit anywhere is stuck, or wear-induced latching is
    /// configured — the write path's fast-path check.
    pub fn stuck_active(&self) -> bool {
        !self.stuck.is_empty() || self.cfg.stuck_at.endurance_writes.is_some()
    }

    /// The stuck bits of `word`, if any.
    pub fn stuck_word(&self, word: usize) -> Option<StuckWord> {
        if self.stuck.is_empty() {
            None
        } else {
            self.stuck.get(&word).copied()
        }
    }

    /// Every word with at least one stuck bit, in unspecified order.
    pub fn stuck_words(&self) -> impl Iterator<Item = (usize, StuckWord)> + '_ {
        self.stuck.iter().map(|(&w, &s)| (w, s))
    }

    /// Total stuck bits across the device (armed + wear-latched).
    pub fn stuck_bit_count(&self) -> u64 {
        self.stuck.values().map(|s| s.mask.count_ones() as u64).sum()
    }

    /// Called by the device after programming a dirty word: decides whether
    /// this write latches one more bit of word `word`. `write_count` is the
    /// word's cumulative write count, `word_bits` the word width in bits and
    /// `written` the word image just programmed. Returns the newly latched
    /// bit index, if any.
    ///
    /// The latched bit keeps its *just-written* value, which is how real
    /// cells fail (the final program pulse sticks): committed data stays
    /// intact, and the fault surfaces as a write-verify failure for the
    /// word's next occupant.
    pub fn maybe_latch(
        &mut self,
        word: usize,
        write_count: u32,
        word_bits: u32,
        written: u64,
    ) -> Option<u32> {
        let threshold = self.cfg.stuck_at.endurance_writes?;
        if write_count < threshold {
            return None;
        }
        // Deterministic per-(seed, word, write-count) draw: replayable runs
        // latch identical bits in identical places.
        let h = splitmix64(
            self.cfg.stuck_at.seed
                ^ splitmix64(word as u64)
                ^ ((write_count as u64) << 32),
        );
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.cfg.stuck_at.latch_probability {
            return None;
        }
        let bit = (splitmix64(h) % word_bits as u64) as u32;
        let m = 1u64 << bit;
        let e = self.stuck.entry(word).or_default();
        if e.mask & m != 0 {
            return None; // that cell already failed
        }
        e.mask |= m;
        if written & m != 0 {
            e.vals |= m;
        } else {
            e.vals &= !m;
        }
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_recover_cycle() {
        let mut f = FaultState::new(FaultConfig::default());
        assert!(!f.is_crashed());
        f.crash();
        assert!(f.is_crashed());
        f.recover();
        assert!(!f.is_crashed());
    }

    #[test]
    fn armed_tear_fires_once() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_torn(2);
        assert_eq!(f.arm_write(100, 8), Some(16));
        assert!(f.is_crashed());
        f.recover();
        assert_eq!(f.arm_write(100, 8), None);
    }

    #[test]
    fn tear_truncates_to_payload() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_torn(100);
        assert_eq!(f.arm_write(24, 8), Some(24));
    }

    #[test]
    fn scheduled_tear_fires_on_nth_write() {
        let mut f = FaultState::new(FaultConfig {
            tear_write_at: Some((1, 1)),
            ..Default::default()
        });
        assert_eq!(f.arm_write(64, 8), None);
        assert_eq!(f.arm_write(64, 8), Some(8));
        assert!(f.is_crashed());
    }

    /// The config-scheduled tear observed end-to-end at the *device* level:
    /// a device built with `tear_write_at: Some((n, w))` serves `n` whole
    /// writes, tears the `n`-th at `w` words, and lands in the crashed
    /// state — the long-unused config knob proven against
    /// [`crate::NvmDevice`] itself, not just the state machine.
    #[test]
    fn scheduled_tear_fires_on_nth_device_write() {
        use crate::{NvmConfig, NvmDevice, NvmError, WriteMode};

        let mut cfg = NvmConfig::default().with_size(256);
        cfg.fault = FaultConfig {
            tear_write_at: Some((2, 1)),
            ..Default::default()
        };
        let mut d = NvmDevice::open(cfg).unwrap();

        // Writes 0 and 1 persist fully.
        d.write(0, &[0x11u8; 16], WriteMode::Raw).unwrap();
        d.write(16, &[0x22u8; 16], WriteMode::Raw).unwrap();
        assert!(!d.is_crashed());

        // Write 2 tears after one 8-byte word and crashes the device.
        let s = d.write(32, &[0x33u8; 24], WriteMode::Raw).unwrap();
        assert_eq!(s.words_written, 1);
        assert_eq!(s.bits_addressed, 64, "stats cover only the torn prefix");
        assert!(d.is_crashed());
        assert!(matches!(
            d.write(64, &[0u8; 8], WriteMode::Raw),
            Err(NvmError::Crashed)
        ));

        // After restart the prefix is persisted, the tail never landed and
        // the scheduled tear does not re-fire.
        d.recover();
        assert_eq!(d.peek(32, 8).unwrap(), &[0x33u8; 8]);
        assert_eq!(d.peek(40, 16).unwrap(), &[0u8; 16]);
        d.write(64, &[0x44u8; 8], WriteMode::Raw).unwrap();
        assert!(!d.is_crashed());
    }

    #[test]
    fn meta_tear_skips_then_fires_then_blocks() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_meta_tear(MetaTear {
            target: MetaTarget::Wal,
            skip: 2,
            keep_bytes: 5,
        });
        // Writes to other targets never consume the tear.
        assert_eq!(f.filter_meta_write(MetaTarget::Superblock, 48), Ok(None));
        assert_eq!(f.filter_meta_write(MetaTarget::Checkpoint, 100), Ok(None));
        // Two skipped WAL writes, then the tear fires at 5 bytes.
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Ok(None));
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Ok(None));
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Ok(Some(5)));
        assert!(f.is_crashed());
        // Everything after the crash is refused.
        assert_eq!(f.filter_meta_write(MetaTarget::Wal, 20), Err(crate::NvmError::Crashed));
        assert_eq!(f.filter_meta_write(MetaTarget::Superblock, 48), Err(crate::NvmError::Crashed));
        assert_eq!(f.meta_writes_seen(MetaTarget::Wal), 3);
    }

    #[test]
    fn stuck_word_accumulates_armed_bits() {
        let mut f = FaultState::new(FaultConfig::default());
        assert!(!f.stuck_active());
        assert_eq!(f.stuck_word(3), None);
        f.arm_stuck_bit(3, 0, true);
        f.arm_stuck_bit(3, 5, false);
        assert!(f.stuck_active());
        let s = f.stuck_word(3).unwrap();
        assert_eq!(s.mask, 0b10_0001);
        assert_eq!(s.vals, 0b00_0001);
        assert_eq!(f.stuck_bit_count(), 2);
        // Overlay: bit 0 forced to 1, bit 5 forced to 0, others untouched.
        assert_eq!(s.apply(0b11_0000), 0b01_0001);
        // Re-arming the same bit with the other polarity flips its value.
        f.arm_stuck_bit(3, 0, false);
        assert_eq!(f.stuck_word(3).unwrap().vals, 0);
        assert_eq!(f.stuck_bit_count(), 2);
    }

    #[test]
    fn latching_requires_threshold_and_is_deterministic() {
        let cfg = FaultConfig {
            stuck_at: StuckAtConfig {
                endurance_writes: Some(10),
                latch_probability: 1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut f = FaultState::new(cfg);
        assert_eq!(f.maybe_latch(7, 9, 64, u64::MAX), None);
        let bit = f.maybe_latch(7, 10, 64, u64::MAX).expect("past threshold");
        // Latched at the just-written value (all-ones here).
        let s = f.stuck_word(7).unwrap();
        assert_eq!(s.mask, 1u64 << bit);
        assert_eq!(s.vals, 1u64 << bit);
        // Same seed, same word, same count → same bit on a fresh state.
        let mut g = FaultState::new(cfg);
        assert_eq!(g.maybe_latch(7, 10, 64, u64::MAX), Some(bit));
        // Re-drawing the exact same cell is a no-op.
        assert_eq!(f.maybe_latch(7, 10, 64, 0), None);
        assert_eq!(f.stuck_bit_count(), 1);
    }

    #[test]
    fn zero_probability_never_latches() {
        let mut f = FaultState::new(FaultConfig {
            stuck_at: StuckAtConfig {
                endurance_writes: Some(1),
                latch_probability: 0.0,
                ..Default::default()
            },
            ..Default::default()
        });
        for wc in 1..200u32 {
            assert_eq!(f.maybe_latch(0, wc, 64, 0xAB), None);
        }
        assert_eq!(f.stuck_bit_count(), 0);
    }

    #[test]
    fn meta_tear_keep_clamps_to_payload() {
        let mut f = FaultState::new(FaultConfig::default());
        f.arm_meta_tear(MetaTear {
            target: MetaTarget::Checkpoint,
            skip: 0,
            keep_bytes: 1_000_000,
        });
        assert_eq!(f.filter_meta_write(MetaTarget::Checkpoint, 64), Ok(Some(64)));
    }
}
