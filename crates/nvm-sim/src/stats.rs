//! Write accounting: per-operation and device-cumulative statistics.
//!
//! The evaluation metrics of the paper are all derived from these counters:
//!
//! * Figure 6 plots *bit updates per 512 bits written* — `bit_flips +
//!   aux_bit_flips` normalized by payload bits.
//! * Figure 9 plots *written cache lines per request* — `lines_written`.
//! * Figures 7/8 derive modeled latency from `lines_written` (see
//!   [`crate::latency`]).

/// Statistics for a single write operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Payload bits actually updated in the NVM array.
    ///
    /// For a raw (conventional) write this is every bit of the payload; for a
    /// differential write it is the Hamming distance between old and new
    /// content.
    pub bit_flips: u64,
    /// Auxiliary metadata bits updated (FNW inversion flags, MinShift
    /// rotation counters, Captopril mask bits, store bitmaps...).
    pub aux_bit_flips: u64,
    /// Payload bits covered by the request (`8 * len`), regardless of how
    /// many were actually flipped. The denominator of Figure 6.
    pub bits_addressed: u64,
    /// Distinct NVM words that had at least one bit updated.
    pub words_written: u64,
    /// Distinct cache lines that had at least one bit updated.
    pub lines_written: u64,
    /// Distinct cache lines read (read-before-write traffic).
    pub lines_read: u64,
}

impl WriteStats {
    /// Total updated bits including auxiliary metadata.
    #[inline]
    pub fn total_bit_flips(&self) -> u64 {
        self.bit_flips + self.aux_bit_flips
    }

    /// Bit updates normalized to a 512-bit payload, the unit of Figure 6.
    ///
    /// Returns 0.0 when no payload bits were addressed.
    pub fn flips_per_512(&self) -> f64 {
        if self.bits_addressed == 0 {
            0.0
        } else {
            self.total_bit_flips() as f64 * 512.0 / self.bits_addressed as f64
        }
    }

    /// Accumulates another operation's stats into this one.
    pub fn merge(&mut self, other: &WriteStats) {
        self.bit_flips += other.bit_flips;
        self.aux_bit_flips += other.aux_bit_flips;
        self.bits_addressed += other.bits_addressed;
        self.words_written += other.words_written;
        self.lines_written += other.lines_written;
        self.lines_read += other.lines_read;
    }
}

impl std::ops::Add for WriteStats {
    type Output = WriteStats;
    fn add(mut self, rhs: WriteStats) -> WriteStats {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for WriteStats {
    fn add_assign(&mut self, rhs: WriteStats) {
        self.merge(&rhs);
    }
}

/// Cumulative counters for a device since creation (or the last
/// [`DeviceStats::reset`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Sum of all per-operation stats.
    pub totals: WriteStats,
    /// Number of write operations served.
    pub write_ops: u64,
    /// Number of read operations served.
    pub read_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

impl DeviceStats {
    /// Records one write operation.
    pub fn record_write(&mut self, s: &WriteStats) {
        self.totals.merge(s);
        self.write_ops += 1;
    }

    /// Records one read operation of `len` bytes.
    pub fn record_read(&mut self, len: usize) {
        self.read_ops += 1;
        self.bytes_read += len as u64;
    }

    /// Mean updated bits (payload + aux) per 512 payload bits addressed —
    /// the y-axis of Figure 6 aggregated over all operations.
    pub fn mean_flips_per_512(&self) -> f64 {
        self.totals.flips_per_512()
    }

    /// Mean cache lines written per write operation — the y-axis of Figure 9.
    pub fn mean_lines_per_write(&self) -> f64 {
        if self.write_ops == 0 {
            0.0
        } else {
            self.totals.lines_written as f64 / self.write_ops as f64
        }
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = DeviceStats::default();
    }

    /// Accumulates another device's counters into this one.
    ///
    /// This is the cross-shard aggregation primitive: a sharded store gives
    /// every shard its own device over a disjoint slice of one logical
    /// address space, and the merged counters are exactly what a single
    /// device serving the combined traffic would have reported (every field
    /// is a plain sum).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.totals.merge(&other.totals);
        self.write_ops += other.write_ops;
        self.read_ops += other.read_ops;
        self.bytes_read += other.bytes_read;
    }

    /// Sums an iterator of per-shard statistics into one logical view.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a DeviceStats>) -> DeviceStats {
        let mut out = DeviceStats::default();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Returns the difference `self - earlier`, for windowed measurements.
    ///
    /// All counters in `earlier` must be ≤ the corresponding counter in
    /// `self` (i.e. `earlier` must be a prior snapshot of the same device).
    pub fn since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            totals: WriteStats {
                bit_flips: self.totals.bit_flips - earlier.totals.bit_flips,
                aux_bit_flips: self.totals.aux_bit_flips - earlier.totals.aux_bit_flips,
                bits_addressed: self.totals.bits_addressed - earlier.totals.bits_addressed,
                words_written: self.totals.words_written - earlier.totals.words_written,
                lines_written: self.totals.lines_written - earlier.totals.lines_written,
                lines_read: self.totals.lines_read - earlier.totals.lines_read,
            },
            write_ops: self.write_ops - earlier.write_ops,
            read_ops: self.read_ops - earlier.read_ops,
            bytes_read: self.bytes_read - earlier.bytes_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WriteStats {
        WriteStats {
            bit_flips: 10,
            aux_bit_flips: 2,
            bits_addressed: 512,
            words_written: 3,
            lines_written: 1,
            lines_read: 1,
        }
    }

    #[test]
    fn total_includes_aux() {
        assert_eq!(sample().total_bit_flips(), 12);
    }

    #[test]
    fn flips_per_512_normalizes() {
        let s = sample();
        assert!((s.flips_per_512() - 12.0).abs() < 1e-12);
        let mut s2 = s;
        s2.bits_addressed = 1024;
        assert!((s2.flips_per_512() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn flips_per_512_empty_is_zero() {
        assert_eq!(WriteStats::default().flips_per_512(), 0.0);
    }

    #[test]
    fn merge_and_add_agree() {
        let a = sample();
        let b = sample();
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, a + b);
        assert_eq!(m.bit_flips, 20);
        assert_eq!(m.bits_addressed, 1024);
    }

    #[test]
    fn device_stats_means() {
        let mut d = DeviceStats::default();
        d.record_write(&sample());
        d.record_write(&sample());
        assert_eq!(d.write_ops, 2);
        assert!((d.mean_lines_per_write() - 1.0).abs() < 1e-12);
        assert!((d.mean_flips_per_512() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn device_stats_since_window() {
        let mut d = DeviceStats::default();
        d.record_write(&sample());
        let snap = d.clone();
        d.record_write(&sample());
        d.record_read(100);
        let w = d.since(&snap);
        assert_eq!(w.write_ops, 1);
        assert_eq!(w.read_ops, 1);
        assert_eq!(w.totals.bit_flips, 10);
    }

    #[test]
    fn reset_clears() {
        let mut d = DeviceStats::default();
        d.record_write(&sample());
        d.reset();
        assert_eq!(d, DeviceStats::default());
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = DeviceStats::default();
        a.record_write(&sample());
        a.record_read(32);
        let mut b = DeviceStats::default();
        b.record_write(&sample());
        b.record_write(&sample());
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.write_ops, 3);
        assert_eq!(m.read_ops, 1);
        assert_eq!(m.bytes_read, 32);
        assert_eq!(m.totals.bit_flips, 30);
        // merged() over the parts gives the same logical view.
        assert_eq!(DeviceStats::merged([&a, &b]), m);
        // Merging nothing is the identity.
        assert_eq!(
            DeviceStats::merged(std::iter::empty::<&DeviceStats>()),
            DeviceStats::default()
        );
    }
}
