//! Device geometry: word and cache-line layout.
//!
//! The paper charges writes at three granularities (§IV): individual bits
//! ("bit flips"), NVM *words* (the 8-byte unit a differential write modifies)
//! and NVM *lines* (the 64-byte cache line that must be written back).
//! [`Geometry`] centralizes the index arithmetic for all three.

/// Word/line geometry of an emulated NVM device.
///
/// Defaults match the paper's assumed hardware: 8-byte words and 64-byte
/// cache lines (the granularity PCM is written at, per §I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Bytes per NVM word (the unit of a read-modify-write).
    pub word_bytes: usize,
    /// Bytes per cache line (the unit of a line write-back).
    pub line_bytes: usize,
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry {
            word_bytes: 8,
            line_bytes: 64,
        }
    }
}

impl Geometry {
    /// Creates a geometry, validating that the line size is a positive
    /// multiple of the word size.
    ///
    /// # Panics
    /// Panics if `word_bytes == 0` or `line_bytes` is not a multiple of
    /// `word_bytes`.
    pub fn new(word_bytes: usize, line_bytes: usize) -> Self {
        assert!(word_bytes > 0, "word size must be positive");
        assert!(
            line_bytes >= word_bytes && line_bytes.is_multiple_of(word_bytes),
            "line size ({line_bytes}) must be a positive multiple of word size ({word_bytes})"
        );
        Geometry {
            word_bytes,
            line_bytes,
        }
    }

    /// Index of the word containing byte address `addr`.
    #[inline]
    pub fn word_of(&self, addr: usize) -> usize {
        addr / self.word_bytes
    }

    /// Index of the cache line containing byte address `addr`.
    #[inline]
    pub fn line_of(&self, addr: usize) -> usize {
        addr / self.line_bytes
    }

    /// Number of distinct words overlapped by the byte range `[addr, addr+len)`.
    ///
    /// Returns 0 for an empty range.
    #[inline]
    pub fn words_spanned(&self, addr: usize, len: usize) -> usize {
        span(addr, len, self.word_bytes)
    }

    /// Number of distinct cache lines overlapped by `[addr, addr+len)`.
    #[inline]
    pub fn lines_spanned(&self, addr: usize, len: usize) -> usize {
        span(addr, len, self.line_bytes)
    }

    /// Iterator over `(word_index, byte_range)` pairs covering
    /// `[addr, addr+len)`, where each `byte_range` is the sub-range of the
    /// request that falls into that word.
    pub fn words_in(
        &self,
        addr: usize,
        len: usize,
    ) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        chunks(addr, len, self.word_bytes)
    }

    /// Iterator over `(line_index, byte_range)` pairs covering
    /// `[addr, addr+len)`.
    pub fn lines_in(
        &self,
        addr: usize,
        len: usize,
    ) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        chunks(addr, len, self.line_bytes)
    }
}

/// Number of aligned `unit`-sized blocks overlapping `[addr, addr+len)`.
#[inline]
fn span(addr: usize, len: usize, unit: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let first = addr / unit;
    let last = (addr + len - 1) / unit;
    last - first + 1
}

/// Yields `(block_index, absolute_byte_range)` for each aligned block
/// overlapping `[addr, addr+len)`.
fn chunks(
    addr: usize,
    len: usize,
    unit: usize,
) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> {
    let end = addr + len;
    let mut cur = addr;
    std::iter::from_fn(move || {
        if cur >= end {
            return None;
        }
        let block = cur / unit;
        let block_end = ((block + 1) * unit).min(end);
        let r = cur..block_end;
        cur = block_end;
        Some((block, r))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_8_byte_words_64_byte_lines() {
        let g = Geometry::default();
        assert_eq!(g.word_bytes, 8);
        assert_eq!(g.line_bytes, 64);
    }

    #[test]
    fn word_and_line_of() {
        let g = Geometry::default();
        assert_eq!(g.word_of(0), 0);
        assert_eq!(g.word_of(7), 0);
        assert_eq!(g.word_of(8), 1);
        assert_eq!(g.line_of(63), 0);
        assert_eq!(g.line_of(64), 1);
    }

    #[test]
    fn words_spanned_handles_unaligned_ranges() {
        let g = Geometry::default();
        assert_eq!(g.words_spanned(0, 8), 1);
        assert_eq!(g.words_spanned(4, 8), 2); // straddles a word boundary
        assert_eq!(g.words_spanned(0, 0), 0);
        assert_eq!(g.words_spanned(7, 2), 2);
        assert_eq!(g.words_spanned(8, 16), 2);
    }

    #[test]
    fn lines_spanned_handles_unaligned_ranges() {
        let g = Geometry::default();
        assert_eq!(g.lines_spanned(0, 64), 1);
        assert_eq!(g.lines_spanned(60, 8), 2);
        assert_eq!(g.lines_spanned(0, 65), 2);
        assert_eq!(g.lines_spanned(128, 1), 1);
    }

    #[test]
    fn words_in_yields_subranges() {
        let g = Geometry::default();
        let parts: Vec<_> = g.words_in(4, 12).collect();
        assert_eq!(parts, vec![(0, 4..8), (1, 8..16)]);
    }

    #[test]
    fn lines_in_yields_subranges() {
        let g = Geometry::default();
        let parts: Vec<_> = g.lines_in(60, 10).collect();
        assert_eq!(parts, vec![(0, 60..64), (1, 64..70)]);
    }

    #[test]
    #[should_panic]
    fn rejects_non_multiple_line_size() {
        Geometry::new(8, 60);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_word() {
        Geometry::new(0, 64);
    }

    #[test]
    fn custom_geometry() {
        let g = Geometry::new(4, 32);
        assert_eq!(g.words_spanned(0, 9), 3);
        assert_eq!(g.lines_spanned(0, 33), 2);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// `words_in`/`lines_in` partition the request exactly: sub-ranges
        /// are contiguous, disjoint, cover [addr, addr+len), and their
        /// count equals `*_spanned`.
        #[test]
        fn chunk_iterators_partition_the_range(addr in 0usize..4096, len in 0usize..512) {
            let g = Geometry::default();
            for (spanned, parts) in [
                (g.words_spanned(addr, len), g.words_in(addr, len).collect::<Vec<_>>()),
                (g.lines_spanned(addr, len), g.lines_in(addr, len).collect::<Vec<_>>()),
            ] {
                prop_assert_eq!(parts.len(), spanned);
                let mut cursor = addr;
                for (_, r) in &parts {
                    prop_assert_eq!(r.start, cursor);
                    prop_assert!(r.end > r.start);
                    cursor = r.end;
                }
                if len > 0 {
                    prop_assert_eq!(cursor, addr + len);
                }
            }
        }

        /// Block indices are non-decreasing and strictly increase across
        /// chunk boundaries.
        #[test]
        fn chunk_indices_increase(addr in 0usize..4096, len in 1usize..512) {
            let g = Geometry::default();
            let parts: Vec<_> = g.words_in(addr, len).collect();
            for w in parts.windows(2) {
                prop_assert_eq!(w[0].0 + 1, w[1].0);
            }
        }
    }
}
