//! CRC-32 (IEEE 802.3) — the integrity check stamped on every durable
//! file format in this workspace.
//!
//! The durability layer follows the magic+version+CRC-on-every-file
//! discipline: superblock replicas, WAL record frames and checkpoint
//! bodies each carry a CRC-32 over their payload, and recovery treats a
//! mismatch as "this bytes never finished writing" rather than as an
//! error to surface. One shared dependency-free implementation keeps all
//! three formats honest about using the *same* polynomial.
//!
//! Implementation: the classic reflected table-driven algorithm
//! (polynomial `0xEDB88320`), with the 256-entry table built in a `const`
//! evaluator so there is no runtime initialization to order against.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
///
/// ```
/// use pnw_nvm_sim::crc32;
///
/// // The catalogue check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feeds `bytes` into a running (pre-inverted) state.
///
/// Start from `0xFFFF_FFFF`, feed chunks in order, and XOR the final
/// state with `0xFFFF_FFFF` to finish — [`crc32`] is exactly that
/// sequence over one chunk.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"predict-and-write durable formats";
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn single_bit_corruption_changes_the_checksum() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
