//! CRC-32 (IEEE 802.3) and CRC-32C (Castagnoli) — the integrity checks
//! stamped on durable file formats and the in-memory data path.
//!
//! The durability layer follows the magic+version+CRC-on-every-file
//! discipline: superblock replicas, WAL record frames and checkpoint
//! bodies each carry a CRC-32 over their payload, and recovery treats a
//! mismatch as "this bytes never finished writing" rather than as an
//! error to surface. One shared dependency-free implementation keeps all
//! three formats honest about using the *same* polynomial.
//!
//! [`crc32c_update`] is the *hot-path* variant: the Castagnoli polynomial
//! is what the x86-64 SSE4.2 `crc32` instruction computes, so bucket
//! seals verified on every GET run at a few cycles per 8 bytes instead of
//! a table lookup per byte. The software fallback (slice-by-8) is
//! bit-identical, so a store file is portable across machines with and
//! without the instruction. File formats deliberately stay on CRC-32:
//! they are I/O-bound, and keeping the polynomials distinct means a WAL
//! frame CRC can never be mistaken for a bucket seal.
//!
//! Implementation: the classic reflected table-driven algorithm
//! (polynomial `0xEDB88320`), with the 256-entry table built in a `const`
//! evaluator so there is no runtime initialization to order against.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
///
/// ```
/// use pnw_nvm_sim::crc32;
///
/// // The catalogue check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feeds `bytes` into a running (pre-inverted) state.
///
/// Start from `0xFFFF_FFFF`, feed chunks in order, and XOR the final
/// state with `0xFFFF_FFFF` to finish — [`crc32`] is exactly that
/// sequence over one chunk.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// The reflected Castagnoli polynomial (`0x1EDC6F41`).
const CASTAGNOLI: u32 = 0x82F6_3B78;

/// Slice-by-8 tables for CRC-32C: `C_TABLES[k][b]` advances a byte `b`
/// that sits `k` positions before the end of an 8-byte block.
const C_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CASTAGNOLI
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// CRC-32C (Castagnoli) of `bytes`.
///
/// ```
/// use pnw_nvm_sim::crc32c;
///
/// // The catalogue check value for "123456789".
/// assert_eq!(crc32c(b"123456789"), 0xE306_9283);
/// ```
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming CRC-32C: feeds `bytes` into a running (pre-inverted) state,
/// same protocol as [`crc32_update`]. Uses the SSE4.2 `crc32` instruction
/// when the CPU has it; the software path produces identical bits.
#[inline]
pub fn crc32c_update(state: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: the sse4.2 feature was just verified at runtime.
            return unsafe { crc32c_hw(state, bytes) };
        }
    }
    crc32c_sw(state, bytes)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(state: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = bytes.chunks_exact(8);
    let mut crc = state as u64;
    for c in &mut chunks {
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

fn crc32c_sw(mut state: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ state;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        state = C_TABLES[7][(lo & 0xFF) as usize]
            ^ C_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ C_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ C_TABLES[4][(lo >> 24) as usize]
            ^ C_TABLES[3][(hi & 0xFF) as usize]
            ^ C_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ C_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ C_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ C_TABLES[0][((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"predict-and-write durable formats";
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn single_bit_corruption_changes_the_checksum() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn crc32c_catalogue_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc32c_software_matches_hardware_and_streaming() {
        // Pseudo-random data at every length 0..=80 (covers the 8-byte
        // block path and every remainder), software vs the dispatching
        // entry point (hardware where the CPU has it) vs chunked
        // streaming — all three must agree bit-for-bit.
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        let data: Vec<u8> = (0..80)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for len in 0..=data.len() {
            let d = &data[..len];
            let sw = crc32c_sw(0xFFFF_FFFF, d) ^ 0xFFFF_FFFF;
            assert_eq!(crc32c(d), sw, "len {len}");
            let mut state = 0xFFFF_FFFF;
            for chunk in d.chunks(5) {
                state = crc32c_update(state, chunk);
            }
            assert_eq!(state ^ 0xFFFF_FFFF, sw, "streaming len {len}");
        }
    }

    #[test]
    fn crc32c_single_bit_corruption_changes_the_checksum() {
        let mut data = vec![0x5Au8; 72];
        let clean = crc32c(&data);
        for byte in 0..72 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), clean, "byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
