//! pnw-cli — an interactive shell over a PNW store.
//!
//! ```text
//! cargo run --release --bin pnw-cli -- --capacity 1024 --value-size 64
//! pnw> put 1 hello world
//! pnw> get 1
//! pnw> stats
//! pnw> save /tmp/zone.img
//! ```
//!
//! Commands: `put <key> <text>`, `get <key>`, `del <key>`, `train`,
//! `stats`, `extend <buckets>`, `save <path>`, `help`, `quit`.
//! Start with `--image <path>` to reopen a saved cell image.
//!
//! `pnw-cli --throughput [--threads 1,2,4] [--shards N] [--ops N]` skips
//! the shell and runs the multi-threaded throughput sweep over the sharded
//! store instead, writing `BENCH_throughput.json`.

use std::io::{BufRead, Write};

use pnw::throughput::{self, ThroughputConfig};
use pnw_core::{PnwConfig, PnwStore};

struct CliArgs {
    capacity: usize,
    value_size: usize,
    clusters: usize,
    reserve: usize,
    image: Option<std::path::PathBuf>,
    throughput: bool,
    threads: Vec<usize>,
    shards: usize,
    ops: usize,
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut out = CliArgs {
        capacity: 1024,
        value_size: 64,
        clusters: 8,
        reserve: 0,
        image: None,
        throughput: false,
        threads: vec![1, 2, 4],
        shards: 8,
        ops: 2_000,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--capacity" => out.capacity = grab("--capacity")?.parse().map_err(|e| format!("{e}"))?,
            "--value-size" => {
                out.value_size = grab("--value-size")?.parse().map_err(|e| format!("{e}"))?
            }
            "--clusters" => out.clusters = grab("--clusters")?.parse().map_err(|e| format!("{e}"))?,
            "--reserve" => out.reserve = grab("--reserve")?.parse().map_err(|e| format!("{e}"))?,
            "--image" => out.image = Some(grab("--image")?.into()),
            "--throughput" => out.throughput = true,
            "--threads" => {
                out.threads = grab("--threads")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad thread count: {e}")))
                    .collect::<Result<_, _>>()?;
                if out.threads.is_empty() {
                    return Err("--threads needs at least one value".into());
                }
            }
            "--shards" => out.shards = grab("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--ops" => out.ops = grab("--ops")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
    }
    Ok(out)
}

/// Runs the multi-threaded throughput sweep and writes
/// `BENCH_throughput.json`.
fn run_throughput(args: &CliArgs) {
    let base = ThroughputConfig {
        shards: args.shards,
        ops_per_thread: args.ops,
        value_size: args.value_size,
        clusters: args.clusters.max(1),
        ..Default::default()
    };
    println!(
        "throughput sweep: threads {:?}, {} shards, {} ops/thread",
        args.threads, base.shards, base.ops_per_thread
    );
    let reports = throughput::sweep(&base, &args.threads);
    for r in &reports {
        println!(
            "  {} threads: {:.0} ops/sec (p50 {} ns, p99 {} ns, {} full)",
            r.threads, r.ops_per_sec, r.p50_modeled_ns, r.p99_modeled_ns, r.full_errors
        );
    }
    let path = std::path::Path::new("BENCH_throughput.json");
    match throughput::write_json(path, &reports) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("error writing {}: {e}", path.display()),
    }
}

/// Pads or truncates a UTF-8 payload to the store's fixed value size.
fn fit_value(text: &str, size: usize) -> Vec<u8> {
    let mut v = text.as_bytes().to_vec();
    v.resize(size, 0);
    v
}

/// Renders a stored value: the UTF-8 prefix up to the first NUL.
fn show_value(v: &[u8]) -> String {
    let end = v.iter().position(|&b| b == 0).unwrap_or(v.len());
    String::from_utf8_lossy(&v[..end]).into_owned()
}

fn run_command(store: &PnwStore, line: &str) -> Result<String, String> {
    let mut parts = line.split_whitespace();
    let cmd = match parts.next() {
        Some(c) => c,
        None => return Ok(String::new()),
    };
    match cmd {
        "put" => {
            let key: u64 = parts
                .next()
                .ok_or("usage: put <key> <text>")?
                .parse()
                .map_err(|e| format!("bad key: {e}"))?;
            let rest: Vec<&str> = parts.collect();
            let text = rest.join(" ");
            let value = fit_value(&text, store.config().value_size);
            let r = store.put(key, &value).map_err(|e| e.to_string())?;
            Ok(format!(
                "ok: cluster {} ({} bit flips, {} lines, predict {:?})",
                r.cluster, r.value_write.bit_flips, r.total_write.lines_written, r.predict
            ))
        }
        "get" => {
            let key: u64 = parts
                .next()
                .ok_or("usage: get <key>")?
                .parse()
                .map_err(|e| format!("bad key: {e}"))?;
            match store.get(key).map_err(|e| e.to_string())? {
                Some(v) => Ok(format!("\"{}\"", show_value(&v))),
                None => Ok("(not found)".into()),
            }
        }
        "del" => {
            let key: u64 = parts
                .next()
                .ok_or("usage: del <key>")?
                .parse()
                .map_err(|e| format!("bad key: {e}"))?;
            let existed = store.delete(key).map_err(|e| e.to_string())?;
            Ok(if existed { "deleted" } else { "(not found)" }.into())
        }
        "train" => {
            let t = store.retrain_now().map_err(|e| e.to_string())?;
            Ok(format!("trained K={} in {t:?}", store.model_k()))
        }
        "extend" => {
            let n: usize = parts
                .next()
                .ok_or("usage: extend <buckets>")?
                .parse()
                .map_err(|e| format!("bad count: {e}"))?;
            let added = store.extend_zone(n);
            Ok(format!(
                "activated {added} buckets (capacity now {}, reserve {})",
                store.active_capacity(),
                store.reserve_remaining()
            ))
        }
        "stats" => {
            let s = store.snapshot();
            Ok(format!(
                "live {} / {} buckets ({} free), K={}, retrains {}\n\
                 puts {} gets {} deletes {}, fallbacks {}\n\
                 bit flips/512b: {:.2}, lines/write: {:.2}, mean predict {:?}",
                s.live,
                s.capacity,
                s.free,
                s.k,
                s.retrains,
                s.puts,
                s.gets,
                s.deletes,
                s.fallbacks,
                s.device.mean_flips_per_512(),
                s.device.mean_lines_per_write(),
                s.mean_predict_latency(),
            ))
        }
        "save" => {
            let path = parts.next().ok_or("usage: save <path>")?;
            store
                .save_image(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            Ok(format!("saved cell image to {path}"))
        }
        "help" => Ok("commands: put get del train extend stats save help quit".into()),
        other => Err(format!("unknown command '{other}' (try help)")),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "pnw-cli [--capacity N] [--value-size N] [--clusters K] [--reserve N] [--image PATH]\n\
             pnw-cli --throughput [--threads 1,2,4] [--shards N] [--ops N] [--value-size N]"
        );
        return;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.throughput {
        run_throughput(&args);
        return;
    }
    let cfg = PnwConfig::new(args.capacity, args.value_size)
        .with_clusters(args.clusters)
        .with_reserve(args.reserve);
    let store = match &args.image {
        Some(path) if path.exists() => match PnwStore::load_image(cfg, path) {
            Ok(s) => {
                println!("reopened image {} ({} live keys)", path.display(), s.len());
                s
            }
            Err(e) => {
                eprintln!("error: cannot open image: {e}");
                std::process::exit(2);
            }
        },
        _ => PnwStore::new(cfg),
    };

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("pnw> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match run_command(&store, line) {
            Ok(msg) if msg.is_empty() => {}
            Ok(msg) => println!("{msg}"),
            Err(e) => println!("error: {e}"),
        }
    }
    if let Some(path) = &args.image {
        if store.save_image(path).is_ok() {
            println!("saved image to {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_fitting() {
        assert_eq!(fit_value("ab", 4), vec![b'a', b'b', 0, 0]);
        assert_eq!(fit_value("abcdef", 4), vec![b'a', b'b', b'c', b'd']);
        assert_eq!(show_value(&[b'h', b'i', 0, 0]), "hi");
        assert_eq!(show_value(b"full"), "full");
    }

    #[test]
    fn arg_parsing() {
        let a = parse_args(&[
            "--capacity".into(),
            "64".into(),
            "--value-size".into(),
            "16".into(),
        ])
        .unwrap();
        assert_eq!(a.capacity, 64);
        assert_eq!(a.value_size, 16);
        assert!(!a.throughput);
        assert!(parse_args(&["--bogus".into()]).is_err());
        assert!(parse_args(&["--capacity".into()]).is_err());
    }

    #[test]
    fn throughput_arg_parsing() {
        let a = parse_args(&[
            "--throughput".into(),
            "--threads".into(),
            "1,2,8".into(),
            "--shards".into(),
            "4".into(),
            "--ops".into(),
            "100".into(),
        ])
        .unwrap();
        assert!(a.throughput);
        assert_eq!(a.threads, vec![1, 2, 8]);
        assert_eq!(a.shards, 4);
        assert_eq!(a.ops, 100);
        assert!(parse_args(&["--threads".into(), "".into()]).is_err());
    }

    #[test]
    fn command_loop_against_store() {
        let store = PnwStore::new(PnwConfig::new(16, 8).with_clusters(2));
        assert!(run_command(&store, "put 1 hello").unwrap().starts_with("ok"));
        assert_eq!(run_command(&store, "get 1").unwrap(), "\"hello\"");
        assert!(run_command(&store, "train").unwrap().contains("trained"));
        assert_eq!(run_command(&store, "del 1").unwrap(), "deleted");
        assert_eq!(run_command(&store, "get 1").unwrap(), "(not found)");
        assert!(run_command(&store, "stats").unwrap().contains("live 0"));
        assert!(run_command(&store, "nope").is_err());
        assert_eq!(run_command(&store, "").unwrap(), "");
    }
}
