//! # pnw — Predict-and-Write, the workspace facade
//!
//! An implementation of **"Predict and Write: Using K-Means Clustering to
//! Extend the Lifetime of NVM Storage"** (Kargar, Litz & Nawab, ICDE 2021):
//! a key/value store for hybrid DRAM–NVM systems that clusters stored
//! values by bit pattern and steers every PUT/UPDATE to the free location
//! whose current cell content is most similar, so the differential write
//! flips as few NVM bits as possible.
//!
//! This crate is the front door of the workspace: it re-exports the store
//! API from [`pnw_core`] (also available unrenamed as [`core_api`]) and
//! ships the `pnw-cli` binary, the examples, and the workspace-level
//! integration tests. The subsystems live in dedicated crates — see
//! `docs/ARCHITECTURE.md` at the repository root for the full map:
//!
//! | Crate | Role |
//! |---|---|
//! | `pnw-core` | the PNW store: model manager, address pool, write path |
//! | `pnw-ml` | K-means, mini-batch K-means, PCA, elbow method |
//! | `pnw-index` | DRAM hash index and NVM Path Hashing |
//! | `pnw-nvm-sim` | emulated NVM device with bit-flip/wear accounting |
//! | `pnw-schemes` | DCW, Flip-N-Write, MinShift, Captopril codecs |
//! | `pnw-baselines` | FPTree-like, NoveLSM-like, Path-Hashing stores |
//! | `pnw-workloads` | deterministic stand-ins for the paper's datasets |
//! | `pnw-server` | socket front end + client: framing, backpressure, drain |
//! | `pnw-bench` | figure/table reproduction harness and benches |
//!
//! ## Quickstart
//!
//! ```
//! use pnw::{PnwConfig, PnwStore};
//!
//! let store = PnwStore::new(PnwConfig::new(256, 8).with_clusters(4));
//! store.put(7, b"pnw-demo").unwrap();
//! assert_eq!(store.get(7).unwrap().as_deref(), Some(&b"pnw-demo"[..]));
//! ```
//!
//! ## One `Store` trait, batched writes
//!
//! Every backend — [`PnwStore`], [`ShardedPnwStore`], and the three
//! baseline stores in `pnw-baselines` — implements the `&self`-based
//! [`Store`] trait, so one harness drives them all, per-op or in
//! [`Batch`]es:
//!
//! ```
//! use pnw::{Batch, PnwConfig, ShardedPnwStore, Store};
//!
//! let store = ShardedPnwStore::new(PnwConfig::new(256, 8).with_shards(4));
//! let mut batch = Batch::new();
//! for k in 0..64u64 {
//!     batch.put(k, &k.to_le_bytes());
//! }
//! // One shard-lock acquisition per shard for the whole batch.
//! let report = store.apply(&batch);
//! assert!(report.all_ok());
//! assert_eq!(store.len(), 64);
//! ```
//!
//! ## Concurrent store
//!
//! [`ShardedPnwStore`] serves PUT/GET/DELETE from many threads at once:
//! keys are routed to independent shards by hash, and all shards share one
//! background-retrained model. `shards = 1` reproduces [`PnwStore`]
//! bit-for-bit.
//!
//! ```
//! use std::sync::Arc;
//! use pnw::{PnwConfig, ShardedPnwStore};
//!
//! let store = Arc::new(ShardedPnwStore::new(
//!     PnwConfig::new(256, 8).with_clusters(4).with_shards(4),
//! ));
//! let handles: Vec<_> = (0..4u64)
//!     .map(|t| {
//!         let store = Arc::clone(&store);
//!         std::thread::spawn(move || {
//!             for i in 0..16 {
//!                 store.put(t * 100 + i, &[t as u8; 8]).unwrap();
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(store.len(), 64);
//! ```
//!
//! The [`throughput`] module (re-exported from `pnw-bench`) measures how
//! this scales: `cargo run --release -p pnw-bench --bin throughput`.
//!
//! ## Durable persistence
//!
//! Give the config a path and the store survives process restarts — and
//! crashes. Data-zone writes go write-through to a backing file, every
//! metadata mutation is logged to a CRC-framed WAL before it is
//! acknowledged, and `checkpoint()` / `close()` cut atomic checkpoints
//! (see *Durability & recovery* in `docs/ARCHITECTURE.md`):
//!
//! ```
//! use pnw::{PnwConfig, PnwStore};
//!
//! let dir = std::env::temp_dir().join(format!("pnw-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let cfg = PnwConfig::new(64, 8).with_clusters(2).with_path(&dir);
//!
//! let store = PnwStore::open(cfg.clone()).unwrap();
//! store.put(7, &7u64.to_le_bytes()).unwrap();
//! store.close().unwrap();
//!
//! // A new process (or a crash-recovered one) sees every committed key.
//! let store = PnwStore::open(cfg).unwrap();
//! assert_eq!(store.get(7).unwrap().unwrap(), 7u64.to_le_bytes());
//! # drop(store);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

pub use pnw_core as core_api;
pub use pnw_server as server;

pub use pnw_bench::throughput;
pub use pnw_core::{
    BackingMode, Batch, BatchReport, ConfigError, MetaTarget, MetaTear, Op, PnwConfig, PnwStore,
    ShardedPnwStore, Store, StoreError,
};
