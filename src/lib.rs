pub use pnw_core as core_api;
