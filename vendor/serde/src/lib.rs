//! # serde (vendored shim)
//!
//! The workspace marks its config types `#[derive(Serialize, Deserialize)]`
//! so they are ready for real serde, but the build environment has no
//! access to crates.io. This shim supplies the two marker traits and no-op
//! derive macros so those derives compile; no actual serialization
//! framework is provided (the workspace's only serializer is the
//! hand-rolled JSON writer in `pnw-core`'s config tests).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name; carries no methods in
/// this shim.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name; carries no methods
/// in this shim.
pub trait Deserialize<'de> {}
