//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! shim: they accept the derive syntax and emit nothing, so types stay
//! source-compatible with real serde without pulling in the framework.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
