//! # rand (vendored shim)
//!
//! A minimal, dependency-free, API-compatible stand-in for the subset of
//! the `rand` crate this workspace uses. The build environment has no
//! access to crates.io, so the workspace vendors the surface it needs:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion, so the
//!   same seed always replays the same stream (the workload generators
//!   and the experiment harnesses rely on this).
//! * [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] over the
//!   primitive types the workspace samples.
//!
//! The statistical quality (xoshiro256++) is more than adequate for the
//! K-means initialization, workload synthesis and property tests here; it
//! is *not* a cryptographic generator, exactly like the real `StdRng`'s
//! contract of "no stability or security guarantees for seeding".

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

pub use rngs::StdRng;

/// The raw 32/64-bit output interface every generator implements.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value equidistributed over a type's natural domain
/// (the full integer range; `[0, 1)` for floats; fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from: `a..b` and `a..=b` over the
/// primitive numeric types.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] — mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value equidistributed over `T`'s natural domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i32 = r.gen_range(-1..=1);
            assert!((-1..=1).contains(&w));
            let f = r.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
