//! # criterion (vendored shim)
//!
//! A minimal, dependency-free stand-in for the subset of the Criterion
//! benchmarking API this workspace uses (`Criterion`, benchmark groups,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros and
//! `black_box`). The build environment has no access to crates.io.
//!
//! Measurement model: each benchmark closure is warmed up briefly, then
//! timed over enough iterations to fill the configured measurement window;
//! the mean per-iteration wall time is printed. There are no statistics,
//! plots or baselines — swap in real Criterion when the registry is
//! reachable and every call site compiles unchanged.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects timing settings and runs benchmark closures.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    window: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            window: Duration::from_millis(600),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window each benchmark tries to fill.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.window = d;
        self
    }

    /// Sets the number of timed samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks. Group-level setting
    /// overrides are scoped to the group, as in real Criterion.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.clone();
        BenchmarkGroup { settings, name: name.into(), _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = name.into();
        run_one(self, &label, f);
        self
    }
}

/// A named collection of benchmarks sharing group-level settings.
pub struct BenchmarkGroup<'a> {
    /// Group-local copy of the driver's settings; overrides die with the
    /// group instead of leaking into later groups.
    settings: Criterion,
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement window for the rest of this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.window = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&self.settings, &label, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(c: &Criterion, label: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up and iteration-count calibration: run single iterations until
    // the warm-up window is spent, tracking the mean cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < c.warm_up || warm_iters == 0 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let per_sample = c.window.as_secs_f64() / c.sample_size as f64;
    let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..c.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("{label:<40} {:>12.1} ns/iter  ({total_iters} iters)", mean_ns);
}

/// Declares a benchmark group: either `criterion_group!(name, fn_a, fn_b)`
/// or the `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
