//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::{Rng, StdRng};

use crate::strategy::Strategy;

/// Admissible sizes for a generated collection: an exact `usize` or a
/// half-open `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Sets deduplicate; bound the attempts so narrow element domains
        // (e.g. 0u64..4 with target 32) still terminate.
        let mut attempts = 0;
        while set.len() < target && attempts < target * 20 + 64 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates a `BTreeSet` with up to `size` elements drawn from `element`
/// (fewer if the element domain is too narrow to reach the target).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}
