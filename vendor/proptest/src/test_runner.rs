//! Case-count configuration and the error type `prop_assert*` produce.

use std::fmt;

/// Per-test configuration; only the case count is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each `#[test]` inside [`proptest!`](crate::proptest)
    /// runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast on CI
        // while still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed assertion inside a property-test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assertions did not hold; carries the rendered message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
