//! The [`Strategy`] trait and its combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, StdRng};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-typed strategies producing
    /// the same `Value` can share a collection (see [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Weighted choice between boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy (full domain for the
/// primitives implemented here).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
