//! # proptest (vendored shim)
//!
//! A minimal, dependency-free, API-compatible stand-in for the subset of
//! `proptest` this workspace uses. The build environment has no access to
//! crates.io, so the workspace vendors a random-testing core with the same
//! surface syntax:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples, [`strategy::Just`],
//! * [`collection::vec`] / [`collection::btree_set`], [`strategy::any`],
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Semantics: each `#[test]` runs `ProptestConfig::cases` random cases from
//! a generator seeded deterministically from the test's name, so failures
//! replay identically run-to-run. Unlike real proptest there is **no
//! shrinking** — a failing case reports its case index and message only.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs `cases` deterministic random cases of a closed test body.
///
/// This is the engine behind the [`proptest!`] macro; the macro hands it
/// the test name (for seeding) and a closure that draws its inputs from
/// the provided generator and returns `Err` on assertion failure.
pub fn run_cases<F>(test_name: &str, cases: u32, mut case: F)
where
    F: FnMut(&mut rand::StdRng) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;
    // Stable FNV-1a over the test name: the same test always replays the
    // same input stream.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng = rand::StdRng::seed_from_u64(seed);
    for i in 0..cases {
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{test_name}' failed at case {i}/{cases}: {e}");
        }
    }
}

/// Expands each `fn name(arg in strategy, ..) { body }` item into a plain
/// `#[test]` that runs [`ProptestConfig::cases`](test_runner::ProptestConfig)
/// deterministic random cases. `prop_assert*` failures abort the case with
/// a message; panics propagate as ordinary test failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies that
/// produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Like `assert!`, but fails the current case with a `TestCaseError`
/// instead of panicking, so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current case with a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Like `assert_ne!`, but fails the current case with a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l
                ),
            ));
        }
    }};
}
