//! Quickstart: create a PNW store, train the model, and watch bit flips
//! drop relative to unsteered writes.
//!
//! Run with: `cargo run --release --example quickstart`

use pnw_core::{PnwConfig, PnwStore};

fn main() {
    // A store with 4096 buckets of 64-byte values, K = 8 clusters.
    let store = PnwStore::new(PnwConfig::new(4096, 64).with_clusters(8));

    // Insert some records. Values come in two bit-pattern families to give
    // the model something to learn: sensor frames that are mostly zeros and
    // log lines that are mostly ASCII.
    for k in 0..2048u64 {
        let value = make_value(k);
        store.put(k, &value).expect("store has room");
    }

    // Train the model on the data zone (Algorithm 1 of the paper). In
    // production you'd use RetrainMode::Background and a load factor; the
    // explicit call keeps the example deterministic.
    let train_time = store.retrain_now().expect("training succeeds");
    println!(
        "trained K-means with K={} in {:?}",
        store.model_k(),
        train_time
    );

    // Overwrite everything. PNW's delete-then-put update path steers each
    // new version onto the free location with the closest bit pattern.
    store.reset_device_stats();
    for k in 0..2048u64 {
        let value = make_value(k.wrapping_add(17));
        store.put(k, &value).expect("update succeeds");
    }

    let snap = store.snapshot();
    println!("after 2048 updates:");
    println!(
        "  bit flips per 512 bits written: {:.1} (conventional would be 512)",
        snap.device.mean_flips_per_512()
    );
    println!(
        "  cache lines written per op:     {:.2}",
        snap.device.mean_lines_per_write()
    );
    println!(
        "  mean prediction latency:        {:?}",
        snap.mean_predict_latency()
    );
    println!(
        "  pool fallbacks:                 {}",
        snap.fallbacks
    );

    // Reads go straight through the index — no model involvement.
    let v = store.get(42).expect("device ok").expect("key exists");
    assert_eq!(v, make_value(42u64.wrapping_add(17)));
    println!("  get(42) -> {} bytes, as written", v.len());
}

/// Two value families keyed by parity.
fn make_value(k: u64) -> Vec<u8> {
    let mut v = vec![0u8; 64];
    if k.is_multiple_of(2) {
        // Sparse sensor frame: a few set bytes.
        v[(k % 61) as usize] = 0x80 | (k % 32) as u8;
        v[((k / 7) % 61) as usize] = 0x01;
    } else {
        // ASCII-ish log line.
        for (i, b) in v.iter_mut().enumerate() {
            *b = b'a' + ((k as usize + i) % 26) as u8;
        }
    }
    v
}
