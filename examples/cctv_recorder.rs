//! CCTV recorder: the paper's motivating media workload (§VI-C), recorded
//! as a TTL/ring-retention scenario.
//!
//! A surveillance camera continuously overwrites a ring of frames on NVM.
//! Consecutive frames share the static background, so a steering store can
//! overwrite a bit-similar old frame instead of an arbitrary one. The PNW
//! recorder here never deletes a frame: every PUT carries a retention
//! deadline and the store's ring retention reclaims space itself — expired
//! frames first, then the earliest-deadline (oldest) frame when the ring
//! is full. A plain DCW free-list ring records the same footage for
//! comparison of bit flips and modeled device lifetime.
//!
//! Run with: `cargo run --release --example cctv_recorder`

use pnw_bench::scenario::{replay, KeyDist, Phase, Scenario, ValueSource};
use pnw_bench::throughput::OpMix;
use pnw_core::{PnwConfig, PnwStore, RetrainMode};
use pnw_nvm_sim::{projected_lifetime_ops, MemoryTech, NvmConfig, NvmDevice, WriteMode};
use pnw_workloads::{VideoConfig, VideoFrames, Workload};

const RING_FRAMES: usize = 512;
const RECORDED_FRAMES: usize = 2048;
/// Retention deadline per frame — far past the run, so the ring bound
/// (earliest-deadline eviction), not wall-clock expiry, does the work.
const RETENTION_MS: u64 = 60_000;

fn main() {
    let cfg = VideoConfig::sherbrooke_like();
    let frame_bytes = cfg.frame_bytes();
    println!(
        "recording {RECORDED_FRAMES} frames of {}x{} video into a {RING_FRAMES}-frame NVM ring\n",
        cfg.width, cfg.height
    );

    // --- PNW recorder (TTL/ring retention) --------------------------------
    let mut camera = VideoFrames::new(cfg.clone(), 7);
    let store = PnwStore::new(
        PnwConfig::new(RING_FRAMES, frame_bytes)
            .with_clusters(8)
            .with_retrain(RetrainMode::Manual)
            .with_ring_retention(),
    );
    // Warm the ring with the first seconds of footage and train.
    store
        .prefill_free_buckets(|| camera.next_value())
        .expect("prefill");
    store.retrain_now().expect("train");
    store.reset_device_stats();

    let sc = Scenario {
        name: "cctv-ring".to_string(),
        seed: 7,
        key_space: RING_FRAMES as u64,
        value_size: frame_bytes,
        window_ops: 256,
        phases: vec![Phase {
            name: "record".to_string(),
            ops: RECORDED_FRAMES,
            mix: OpMix::write_only(),
            keys: KeyDist::Replacement {
                working_set: RING_FRAMES,
                // Ring semantics live in the store now: no client deletes.
                delete_oldest: false,
            },
            values: ValueSource::Video { cfg: cfg.clone(), seed: 7 },
            ttl_ms: Some(RETENTION_MS),
            rate_ops_per_sec: None,
            burst: None,
        }],
    };
    let r = replay(&store, &sc);
    let snap = store.snapshot();
    let pnw_flips = snap.device.mean_flips_per_512();
    let pnw_max_wear = store.max_word_writes();
    assert!(
        snap.scrub.expired + snap.scrub.evicted > 0,
        "ring retention should have reclaimed frames"
    );
    assert!(store.len() <= RING_FRAMES, "ring must stay bounded");

    // --- DCW free-list recorder (no steering) -----------------------------
    let mut camera = VideoFrames::new(cfg, 7);
    let bucket = frame_bytes.next_multiple_of(8);
    let mut dev = NvmDevice::new(NvmConfig::default().with_size(RING_FRAMES * bucket));
    for b in 0..RING_FRAMES {
        let f = camera.next_value();
        dev.write(b * bucket, &f, WriteMode::Raw).expect("warm");
    }
    dev.reset_stats();
    for i in 0..RECORDED_FRAMES {
        let f = camera.next_value();
        let b = i % RING_FRAMES; // plain ring: overwrite round-robin
        dev.write(b * bucket, &f, WriteMode::Diff).expect("record");
    }
    let dcw_flips = dev.stats().mean_flips_per_512();
    let dcw_max_wear = dev.max_word_writes();

    // --- report ------------------------------------------------------------
    println!("                          PNW      DCW ring");
    println!("bit flips / 512 bits   {pnw_flips:>8.1} {dcw_flips:>10.1}");
    println!("hottest word writes    {pnw_max_wear:>8} {dcw_max_wear:>10}");
    let ops = RECORDED_FRAMES as u64;
    let pnw_life = projected_lifetime_ops(MemoryTech::Pcm, pnw_max_wear, ops);
    let dcw_life = projected_lifetime_ops(MemoryTech::Pcm, dcw_max_wear, ops);
    println!("projected PCM lifetime {pnw_life:>8.2e} {dcw_life:>10.2e} (frames)");
    println!(
        "retention reclaimed    {:>8} frames ({} expired, {} evicted)",
        snap.scrub.expired + snap.scrub.evicted,
        snap.scrub.expired,
        snap.scrub.evicted
    );
    println!(
        "\nPNW reduced bit flips by {:.0}% on this stream \
         (windowed series: {} windows)",
        (1.0 - pnw_flips / dcw_flips.max(1e-9)) * 100.0,
        r.windows.len()
    );
}
