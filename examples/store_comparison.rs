//! Head-to-head: PNW vs FPTree vs NoveLSM vs Path hashing on one workload —
//! a minimized Figure 9, with every backend driven through the one
//! [`Store`] trait (PNW included — no adapter), and the writes submitted
//! as [`Batch`]es through [`Store::apply`].
//!
//! Run with: `cargo run --release --example store_comparison`

use pnw_baselines::{FpTreeLike, NoveLsmLike, PathHashStore};
use pnw_core::{Batch, PnwConfig, PnwStore, RetrainMode, Store};
use pnw_workloads::{DatasetKind, Workload};

fn main() {
    let dataset = DatasetKind::Road;
    let n = 2000usize;
    let mut w = dataset.build(42);
    let vs = w.value_size();
    let values = w.take_values(n);
    println!(
        "workload: {} — insert {n} records of {vs} bytes (batched, 64 ops/apply), then delete half\n",
        dataset.name()
    );

    // Build the four stores behind the uniform trait. PNW is warmed and
    // trained first so the prediction path is exercised.
    let stores: Vec<Box<dyn Store>> = vec![
        Box::new({
            let s = PnwStore::new(
                PnwConfig::new(n * 2, vs)
                    .with_clusters(10)
                    .with_retrain(RetrainMode::Manual),
            );
            let mut warm = dataset.build(7);
            s.prefill_free_buckets(|| warm.next_value()).expect("warm");
            s.retrain_now().expect("train");
            s
        }),
        Box::new(FpTreeLike::new(n * 2, vs)),
        Box::new(NoveLsmLike::new(n * 2, vs)),
        Box::new(PathHashStore::new(n * 2, vs)),
    ];

    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for store in &stores {
        store.reset_device_stats();
        // Writes go through the batch API: one Store::apply per 64 ops.
        let mut batch = Batch::with_capacity(64);
        for (i, v) in values.iter().enumerate() {
            batch.put(i as u64, v);
            if batch.len() == 64 {
                assert!(store.apply(&batch).all_ok(), "{}", store.name());
                batch.clear();
            }
        }
        for i in 0..n / 2 {
            batch.delete(i as u64);
            if batch.len() == 64 {
                assert!(store.apply(&batch).all_ok(), "{}", store.name());
                batch.clear();
            }
        }
        assert!(store.apply(&batch).all_ok(), "{}", store.name());

        let ops = (n + n / 2) as f64;
        let s = store.device_stats();
        results.push((
            store.name().into(),
            s.totals.lines_written as f64 / ops,
            s.mean_flips_per_512(),
        ));
    }

    println!("store         lines/request   bit flips per 512 bits");
    for (name, lines, flips) in &results {
        println!("{name:<13} {lines:>13.2} {flips:>22.1}");
    }
    let pnw_lines = results[0].1;
    let worst = results
        .iter()
        .skip(1)
        .map(|r| r.1)
        .fold(f64::MIN, f64::max);
    println!(
        "\nPNW writes {:.1}x fewer cache lines than the most line-hungry baseline",
        worst / pnw_lines.max(1e-9)
    );
}
