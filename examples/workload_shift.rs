//! Workload shift with background retraining (§V-C + §VI-F), replayed
//! through the scenario engine.
//!
//! The store serves a stream that abruptly changes distribution
//! (digit images → fashion images) while holding a working set at ~70%
//! occupancy — past the configured load factor, so the store notices pool
//! pressure, retrains on a worker thread and swaps the model without
//! blocking writes: the paper's "hide the re-training latency" design.
//! The scenario engine replays the three phases and reports the windowed
//! flips/PUT series; the recovery ratio shows the adapted model landing
//! back near the pre-shift steady state.
//!
//! Run with: `cargo run --release --example workload_shift`

use pnw_bench::scenario::{replay, KeyDist, Phase, Scenario, ValueSource};
use pnw_bench::throughput::OpMix;
use pnw_core::{PnwConfig, PnwStore, RetrainMode};
use pnw_workloads::{ImageStyle, TemplateImages, Workload};

const CAPACITY: usize = 768;
const LIVE_TARGET: usize = CAPACITY * 7 / 10;
const PER_PHASE: usize = 1500;

fn main() {
    let store = PnwStore::new(
        PnwConfig::new(CAPACITY, 784)
            .with_clusters(12)
            // Occupancy beyond 60% counts as load-factor pressure, so the
            // 70% working set keeps background retraining armed.
            .with_load_factor(0.6)
            .with_retrain(RetrainMode::Background),
    );

    let mut digits = TemplateImages::new(ImageStyle::Digits, 1);
    store
        .prefill_free_buckets(|| digits.next_value())
        .expect("prefill");
    store.retrain_now().expect("initial training");
    store.reset_device_stats();

    // Same digit templates as the warm-up (seed 1) but a fresh sample
    // stream (the engine derives the stream seed from the scenario seed) —
    // replaying the warm-up stream verbatim would score exact matches.
    let phase = |name: &str, style: ImageStyle, tseed: u64, ops: usize, rate: Option<f64>| Phase {
        name: name.to_string(),
        ops,
        mix: OpMix::write_only(),
        keys: KeyDist::Replacement {
            working_set: LIVE_TARGET,
            delete_oldest: true,
        },
        values: ValueSource::Images { style, seed: tseed },
        ttl_ms: None,
        rate_ops_per_sec: rate,
        burst: None,
    };
    let sc = Scenario {
        name: "workload-shift".to_string(),
        seed: 11,
        key_space: CAPACITY as u64,
        value_size: 784,
        window_ops: 250,
        phases: vec![
            phase("digits", ImageStyle::Digits, 1, PER_PHASE, None),
            // The shift phase runs double-length and paced at a camera-ish
            // arrival rate: 784-dimensional training takes tens of
            // milliseconds, so the wall-clock headroom is what lets the
            // background runs complete and install *during* the phase —
            // the paper's "hide the re-training latency" claim, replayed.
            phase("fashion-shift", ImageStyle::Fashion, 2, PER_PHASE * 2, Some(4_000.0)),
            phase("fashion-adapted", ImageStyle::Fashion, 2, PER_PHASE, None),
        ],
    };

    println!("replaying workload-shift scenario (digits -> fashion)\n");
    let r = replay(&store, &sc);
    for p in &r.phases {
        println!(
            "  phase {:<16} mean bit updates per 512 bits (steady): {:>6.1}   retrains: {}",
            p.phase, p.steady_flips_per_512, p.retrains
        );
    }
    println!(
        "\nrecovery ratio (adapted/pre-shift steady flips per PUT): {:.2}",
        r.recovery_ratio
    );

    let snap = store.snapshot();
    println!(
        "model retrained {} time(s) in the background; {} pool fallbacks",
        snap.retrains.saturating_sub(1),
        snap.fallbacks
    );
    assert!(snap.retrains > 1, "background retraining should have fired");
}
