//! Workload shift with background retraining (§V-C + §VI-F).
//!
//! The store serves a stream that abruptly changes distribution
//! (digit images → fashion images) while holding a working set at ~70%
//! occupancy — past the configured load factor, so the store notices pool
//! pressure, retrains on a worker thread and swaps the model without
//! blocking writes: the paper's "hide the re-training latency" design.
//!
//! Run with: `cargo run --release --example workload_shift`

use std::collections::VecDeque;

use pnw_core::{PnwConfig, PnwStore, RetrainMode};
use pnw_workloads::{ImageStyle, TemplateImages, Workload};

const CAPACITY: usize = 768;
const LIVE_TARGET: usize = CAPACITY * 7 / 10;
const PER_PHASE: usize = 1500;

fn main() {
    let store = PnwStore::new(
        PnwConfig::new(CAPACITY, 784)
            .with_clusters(12)
            // Occupancy beyond 60% counts as load-factor pressure, so the
            // 70% working set keeps background retraining armed.
            .with_load_factor(0.6)
            .with_retrain(RetrainMode::Background),
    );

    let mut digits = TemplateImages::new(ImageStyle::Digits, 1);
    store
        .prefill_free_buckets(|| digits.next_value())
        .expect("prefill");
    store.retrain_now().expect("initial training");
    store.reset_device_stats();

    let mut live: VecDeque<u64> = VecDeque::new();
    let mut next_key = 0u64;

    println!("phase 1: digit images (model trained on digits)");
    // Same templates as the warm-up (seed 1) but a fresh sample stream —
    // replaying the warm-up stream verbatim would score exact matches.
    stream(
        &store,
        &mut TemplateImages::new(ImageStyle::Digits, 1).with_stream_seed(11),
        &mut live,
        &mut next_key,
    );

    println!("\nphase 2: fashion images (stale model; background retrain kicks in)");
    let mut fashion = TemplateImages::new(ImageStyle::Fashion, 2);
    stream(&store, &mut fashion, &mut live, &mut next_key);

    // Let any in-flight retrain install, then measure the adapted model.
    store.wait_for_retrain();
    println!("\nphase 3: fashion images (model retrained in background)");
    stream(&store, &mut fashion, &mut live, &mut next_key);

    let snap = store.snapshot();
    println!(
        "\nmodel retrained {} time(s) in the background; {} pool fallbacks",
        snap.retrains.saturating_sub(1),
        snap.fallbacks
    );
    assert!(snap.retrains > 1, "background retraining should have fired");
}

fn stream(
    store: &PnwStore,
    w: &mut dyn Workload,
    live: &mut VecDeque<u64>,
    next_key: &mut u64,
) {
    let mut flips = 0u64;
    let mut bits = 0u64;
    for _ in 0..PER_PHASE {
        // Keep the working set at the target size: expire the oldest key
        // once the window is full, then insert the new one.
        if live.len() >= LIVE_TARGET {
            let old = live.pop_front().expect("window non-empty");
            store.delete(old).expect("present");
        }
        let v = w.next_value();
        let r = store.put(*next_key, &v).expect("capacity suffices");
        live.push_back(*next_key);
        *next_key += 1;
        flips += r.value_write.total_bit_flips();
        bits += r.value_write.bits_addressed;
    }
    println!(
        "  mean bit updates per 512 bits: {:.1}",
        flips as f64 * 512.0 / bits.max(1) as f64
    );
}
